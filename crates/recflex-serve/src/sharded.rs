//! The multi-shard serving tier.
//!
//! Scales the single-device [`crate::ServeRuntime`] across `N` simulated
//! GPUs the TorchRec way: the model's features are partitioned by a
//! [`Placement`], every admitted device batch is *projected* onto each
//! shard's feature subset, and the per-shard fused kernels run
//! concurrently on independent devices — each with its own FIFO launch
//! queue and processor-sharing executor. A chunk's embedding output is
//! only usable once every shard has finished **and** the pooled rows have
//! been exchanged, so the latency model appends a ring all-gather
//! (bytes = rows × concatenated dim × 4, over a configurable
//! [`Interconnect`]) gated by the *slowest* shard. Stragglers are
//! first-class observables: every record carries the gap between the
//! fastest and slowest shard for its chunks, and the report breaks
//! latency into queue + device + gather.
//!
//! With one shard the projection is the identity, the gather is skipped
//! entirely, and the event sequence degenerates to the single-device
//! runtime's — a 1-shard tier reproduces [`crate::ServeRuntime`]
//! latencies bit-for-bit (tested in this module).
//!
//! Batch shaping (unsplit / split / dynamic coalescing) happens *before*
//! the fan-out, on whole requests: all shards always see the same sample
//! axis for a chunk, which is what keeps the all-gather well-defined.
//!
//! ## Faults and the degradation ladder
//!
//! A [`ResilienceConfig`] turns the tier chaotic-but-answerable. The
//! [`crate::FaultPlan`] drives per-shard throughput (slowdown / stall), lane
//! death (crash) and gather bandwidth (link degradation) at precomputed
//! transition timestamps — fault transitions are ordinary events in the
//! same deterministic loop. The response side:
//!
//! * **hedging** — each chunk may carry a deadline; shards that have not
//!   delivered by then get a copy submitted to their standby replica lane
//!   ([`crate::ReplicationPolicy`]). First finisher wins, the sibling is
//!   cancelled.
//! * **failover** — a crash drops the lane's resident and queued kernels;
//!   each lost chunk-shard work item is re-executed on the shard's
//!   replica, or the least-backlogged healthy survivor (the survivor
//!   loads the dead shard's tables and runs the same fused kernel, so the
//!   re-executed cost equals the original).
//! * **the ladder** — graded on the tier's worst *effective* backlog
//!   (device-µs owed ÷ current throughput; a stalled lane is infinitely
//!   backlogged). Past `drop_hedge_backlog_us` the hedge stops; past
//!   `partial_backlog_us` chunks touched by a crashed shard are served
//!   with that shard's features zero-pooled and flagged `degraded`
//!   instead of re-executed — availability degrades before goodput.
//!
//! `ladder: None` is the no-mitigation baseline: a crashed lane freezes
//! with its queue intact (the restart-from-checkpoint model) and the tier
//! simply sheds under the resulting backlog, which is exactly what the
//! chaos gate proves is worse. With the default `ResilienceConfig` every
//! rate is 1 and every branch below falls through to the fault-free
//! arithmetic, so no-fault runs stay bit-for-bit identical to the
//! pre-fault tier.

use std::collections::HashMap;

use recflex_baselines::Backend;
use recflex_data::{Batch, ModelConfig, Placement};
use recflex_embedding::TableSet;
use recflex_sim::{GpuArch, Interconnect};

use crate::drift::{DriftConfig, DriftMonitor};
use crate::executor::DeviceExecutor;
use crate::faults::{PressureTracker, ResilienceConfig};
use crate::lifecycle::{
    CanaryVerdict, LifecycleConfig, LifecycleMachine, RegressedBackend, RetuneOutcome, TimerAction,
};
use crate::request::Request;
use crate::runtime::{BatchPolicy, ServeConfig, ServeError, TunedCandidate};
use crate::stats::{
    RequestRecord, ShardLaneStats, ShardedReport, ShardedRequestRecord, ShedReason,
};

/// Drift-triggered background retuning for the sharded tier — the
/// multi-shard analogue of [`crate::RetunePolicy`]. One drift monitor
/// watches the *full* admitted batches; when it fires (and the
/// [`LifecycleConfig`] machine is in steady state) the retuner is invoked
/// once per shard with that shard's sub-model and the recent window
/// projected onto its features. A successful candidate set is promoted
/// per the lifecycle config: blindly at the retune timestamp, or —
/// canaried — shadow-executed, compared per shard, and rolled out
/// **staged** shard-by-shard (`stagger_us` apart), aborting and rolling
/// every shard back if any canary regresses.
pub struct ShardedRetunePolicy<'a> {
    /// Drift-detection window and threshold (full-batch traffic).
    pub drift: DriftConfig,
    /// Simulated cost of one background retune, µs (all shards tune
    /// concurrently — one latency, not one per shard).
    pub retune_latency_us: f64,
    /// Gap between consecutive shard promotions in a staged rollout, µs.
    pub stagger_us: f64,
    /// Outcome injection, canarying, and retry/backoff for each attempt.
    pub lifecycle: LifecycleConfig,
    /// Builds a new per-shard backend from the shard's sub-model and
    /// recent traffic projected onto it.
    #[allow(clippy::type_complexity)]
    pub retuner: Box<dyn FnMut(&ModelConfig, &[Batch]) -> TunedCandidate + 'a>,
}

/// One shard's serving lane: the sub-model it owns, its tables and the
/// engine compiled for it.
pub struct ShardLane {
    /// The features this shard serves, as a model.
    pub model: ModelConfig,
    /// The shard's embedding tables.
    pub tables: TableSet,
    /// The engine serving this shard.
    pub backend: Box<dyn Backend>,
}

/// The sharded serving runtime: one model partitioned over `N` devices.
pub struct ShardedServeRuntime<'a> {
    /// Feature → device partition.
    pub placement: Placement,
    /// Per-device lanes, indexed by device.
    pub lanes: Vec<ShardLane>,
    /// Standby replica lanes, parallel to [`Self::replica_of`].
    pub replicas: Vec<ShardLane>,
    /// Which shard each replica lane mirrors.
    pub replica_of: Vec<usize>,
    /// The full model (for gather sizing).
    pub model: &'a ModelConfig,
    /// The simulated device type (same for every shard).
    pub arch: &'a GpuArch,
    /// Runtime configuration, shared across shards.
    pub config: ServeConfig,
    /// The link pooled outputs are gathered over.
    pub interconnect: Interconnect,
    /// Fault injection and the tier's response policy. The default is
    /// everything off — the exact pre-fault serving tier.
    pub resilience: ResilienceConfig,
}

impl<'a> ShardedServeRuntime<'a> {
    /// Build the tier: partition `model` by `placement` and compile one
    /// lane per device with `make_backend`. No faults, no replication —
    /// use [`Self::build_resilient`] for the chaos-capable tier.
    pub fn build(
        model: &'a ModelConfig,
        arch: &'a GpuArch,
        placement: Placement,
        config: ServeConfig,
        interconnect: Interconnect,
        make_backend: impl Fn(&ModelConfig) -> Box<dyn Backend>,
    ) -> Self {
        Self::build_resilient(
            model,
            arch,
            placement,
            config,
            interconnect,
            ResilienceConfig::default(),
            &[],
            make_backend,
        )
    }

    /// Build the tier with fault injection and mitigation. `costs` are
    /// per-feature cost estimates (same units as
    /// [`Placement::balance_by_cost`]) used to size replication —
    /// [`crate::ReplicationPolicy::MirrorHottest`] puts the one standby
    /// lane behind the costliest shard.
    #[allow(clippy::too_many_arguments)]
    pub fn build_resilient(
        model: &'a ModelConfig,
        arch: &'a GpuArch,
        placement: Placement,
        config: ServeConfig,
        interconnect: Interconnect,
        resilience: ResilienceConfig,
        costs: &[f64],
        make_backend: impl Fn(&ModelConfig) -> Box<dyn Backend>,
    ) -> Self {
        assert_eq!(placement.device_of.len(), model.features.len());
        let make_lane = |dev: usize| {
            let sub_model = placement.sub_model(model, dev);
            let tables = TableSet::for_model(&sub_model);
            let backend = make_backend(&sub_model);
            ShardLane {
                model: sub_model,
                tables,
                backend,
            }
        };
        let lanes = (0..placement.num_devices).map(make_lane).collect();
        let replica_of = resilience.replication.mirrored_shards(&placement, costs);
        let replicas = replica_of.iter().map(|&s| make_lane(s)).collect();
        ShardedServeRuntime {
            placement,
            lanes,
            replicas,
            replica_of,
            model,
            arch,
            config,
            interconnect,
            resilience,
        }
    }

    /// Serve a request stream across all shards.
    pub fn serve(&self, requests: &[Request]) -> Result<ShardedReport, ServeError> {
        self.run(requests, None, None)
    }

    /// Serve with a per-request **absolute** admission deadline
    /// (`deadlines[i]` is the wall-clock µs instant request `i` must
    /// finish by). Overrides the uniform [`ServeConfig::slo_deadline_us`]
    /// gate: a request sheds at admission when its remaining time is
    /// already spent or the worst per-shard backlog exceeds it. This is
    /// the plumbing a pipeline stage uses to thread its share of the
    /// end-to-end SLO budget through the tier.
    pub fn serve_with_deadlines(
        &self,
        requests: &[Request],
        deadlines: &[f64],
    ) -> Result<ShardedReport, ServeError> {
        if deadlines.len() != requests.len() {
            return Err(ServeError::Policy(
                "deadlines must be given for every request",
            ));
        }
        self.run(requests, None, Some(deadlines))
    }

    /// Serve a request stream with drift-triggered background retuning
    /// supervised by the schedule lifecycle (see [`ShardedRetunePolicy`]).
    pub fn serve_with_retune(
        &self,
        requests: &[Request],
        retune: &mut ShardedRetunePolicy<'_>,
    ) -> Result<ShardedReport, ServeError> {
        self.run(requests, Some(retune), None)
    }

    fn run(
        &self,
        requests: &[Request],
        mut retune: Option<&mut ShardedRetunePolicy<'_>>,
        deadlines: Option<&[f64]>,
    ) -> Result<ShardedReport, ServeError> {
        match self.config.policy {
            BatchPolicy::Split { cap: 0 } => {
                return Err(ServeError::Policy("split cap must be at least 1"))
            }
            BatchPolicy::Dynamic {
                max_batch,
                max_wait_us,
            }
            | BatchPolicy::DynamicPacked {
                max_batch,
                max_wait_us,
            } => {
                if max_batch == 0 {
                    return Err(ServeError::Policy("dynamic max_batch must be at least 1"));
                }
                if !max_wait_us.is_finite() || max_wait_us < 0.0 {
                    return Err(ServeError::Policy(
                        "dynamic max_wait_us must be finite and >= 0",
                    ));
                }
            }
            _ => {}
        }
        if self.config.hot_shard_cap == Some(0) {
            return Err(ServeError::Policy("hot_shard_cap must be at least 1"));
        }

        let n = requests.len();
        let num_shards = self.placement.num_devices;
        let mut replica_lane_of = vec![None; num_shards];
        for (pos, &s) in self.replica_of.iter().enumerate() {
            replica_lane_of[s] = Some(num_shards + pos);
        }
        let mut st = ShardedRunState {
            executors: (0..num_shards + self.replicas.len())
                .map(|_| DeviceExecutor::new(self.config.streams))
                .collect(),
            lane_stats: vec![ShardLaneStats::default(); num_shards],
            replica_stats: vec![ShardLaneStats::default(); self.replicas.len()],
            replica_lane_of,
            records: vec![None; n],
            remaining_chunks: vec![0u32; n],
            first_start_us: vec![f64::INFINITY; n],
            device_done_us: vec![0.0f64; n],
            last_done_us: vec![0.0f64; n],
            straggler_us: vec![0.0f64; n],
            degraded: vec![false; n],
            arrival_eff_us: requests.iter().map(|r| r.arrival_us).collect(),
            chunks: HashMap::new(),
            job_info: HashMap::new(),
            pending_gathers: Vec::new(),
            pending_deadlines: Vec::new(),
            was_crashed: vec![false; num_shards],
            next_chunk: 0,
            next_job: 0,
            launches: 0,
            hedge_fires: 0,
            hedge_wins: 0,
            failovers: 0,
            buffer: Vec::new(),
            buffer_size: 0,
            buffer_oldest_us: f64::INFINITY,
            monitor: retune
                .as_ref()
                .map(|r| DriftMonitor::for_model(r.drift, self.model)),
            recent: Vec::new(),
            machine: retune.as_ref().map(|r| {
                LifecycleMachine::new(
                    r.lifecycle.clone(),
                    r.retune_latency_us,
                    num_shards,
                    r.stagger_us,
                )
            }),
            candidates: (0..num_shards).map(|_| None).collect(),
            promoted: (0..num_shards).map(|_| None).collect(),
            pressure: PressureTracker::default(),
        };

        let transitions = self.resilience.plan.transitions();
        let mut fault_cursor = 0usize;
        let mut cursor = 0usize;
        let mut now = 0.0f64;

        loop {
            // Candidate events, probed in tie-break priority order:
            // completion, gather, lifecycle transition, fault transition,
            // hedge deadline, arrival, flush.
            st.pending_deadlines
                .retain(|&(_, c)| st.chunks.contains_key(&c));
            let mut next: Option<(f64, EventKind)> = None;
            let mut consider = |t: Option<f64>, kind: EventKind| {
                if let Some(t) = t {
                    if next.is_none_or(|(bt, _)| t < bt) {
                        next = Some((t, kind));
                    }
                }
            };
            let completion_t = st
                .executors
                .iter()
                .filter_map(|e| e.next_completion_us())
                .fold(None, |m: Option<f64>, t| Some(m.map_or(t, |m| m.min(t))));
            consider(completion_t, EventKind::Completion);
            let gather_t = st
                .pending_gathers
                .iter()
                .map(|&(t, _)| t)
                .fold(None, |m: Option<f64>, t| Some(m.map_or(t, |m| m.min(t))));
            consider(gather_t, EventKind::Gather);
            consider(
                st.machine
                    .as_ref()
                    .and_then(LifecycleMachine::next_timer_us),
                EventKind::Lifecycle,
            );
            // Fault transitions matter only while the run is live; once
            // every request is resolved there is nothing left to break,
            // and skipping the tail keeps the makespan a completion
            // timestamp.
            let live = cursor < n
                || !st.all_idle()
                || !st.buffer.is_empty()
                || !st.pending_gathers.is_empty();
            if live && fault_cursor < transitions.len() {
                consider(Some(transitions[fault_cursor].max(now)), EventKind::Fault);
            }
            let deadline_t = st
                .pending_deadlines
                .iter()
                .map(|&(t, _)| t)
                .fold(None, |m: Option<f64>, t| Some(m.map_or(t, |m| m.min(t))));
            consider(deadline_t, EventKind::Hedge);
            let arrival_t = if cursor < n {
                if self.config.closed_loop {
                    // Admit only when the previous request fully drained,
                    // gathers included.
                    (st.all_idle() && st.buffer.is_empty() && st.pending_gathers.is_empty())
                        .then_some(now)
                } else {
                    Some(requests[cursor].arrival_us.max(now))
                }
            } else {
                None
            };
            consider(arrival_t, EventKind::Arrival);
            let flush_t = match self.config.policy {
                BatchPolicy::Dynamic { max_wait_us, .. }
                | BatchPolicy::DynamicPacked { max_wait_us, .. }
                    if !st.buffer.is_empty() =>
                {
                    Some((st.buffer_oldest_us + max_wait_us).max(now))
                }
                _ => None,
            };
            consider(flush_t, EventKind::Flush);

            let Some((t, kind)) = next else { break };
            now = t;

            match kind {
                EventKind::Completion => {
                    for ex in &mut st.executors {
                        ex.advance_to(now);
                    }
                    st.collect_completions(self, requests)?;
                    // Work-conserving: idle devices drain the batcher.
                    if st.all_idle() && !st.buffer.is_empty() {
                        st.flush_buffer(now, self, requests)?;
                    }
                }
                EventKind::Gather => {
                    st.retire_gathers(now, requests)?;
                }
                EventKind::Lifecycle => {
                    let action = match st.machine.as_mut() {
                        Some(m) => m.on_timer(now),
                        None => TimerAction::Noop,
                    };
                    match action {
                        TimerAction::PromoteAll => st.promote_all_shards()?,
                        TimerAction::PromoteShard(s) => st.promote_shard(s)?,
                        TimerAction::DropCandidate | TimerAction::RollBackAll => {
                            st.roll_back_engines();
                        }
                        TimerAction::Retry => {
                            if let Some(policy) = retune.as_deref_mut() {
                                st.launch_attempt(now, self, policy);
                            }
                        }
                        TimerAction::BeginCanary | TimerAction::Noop => {}
                    }
                }
                EventKind::Fault => {
                    while fault_cursor < transitions.len() && transitions[fault_cursor] <= now {
                        fault_cursor += 1;
                    }
                    st.apply_fault_transitions(now, self, requests)?;
                }
                EventKind::Hedge => {
                    st.fire_deadlines(now, self, requests)?;
                }
                EventKind::Arrival => {
                    st.admit(cursor, now, self, requests, &mut retune, deadlines)?;
                    cursor += 1;
                }
                EventKind::Flush => {
                    st.flush_buffer(now, self, requests)?;
                }
            }
        }

        debug_assert!(st.records.iter().all(Option::is_some));
        for (s, stats) in st.lane_stats.iter_mut().enumerate() {
            stats.downtime_us = self.resilience.plan.downtime_us(s, now);
        }
        let (lifecycle, lifecycle_trace) = st
            .machine
            .map(LifecycleMachine::into_parts)
            .unwrap_or_default();
        Ok(ShardedReport {
            records: st.records.into_iter().flatten().collect(),
            per_shard: st.lane_stats,
            per_replica: st.replica_stats,
            kernel_launches: st.launches,
            hedge_fires: st.hedge_fires,
            hedge_wins: st.hedge_wins,
            failovers: st.failovers,
            makespan_us: now,
            lifecycle,
            lifecycle_trace,
        })
    }
}

/// Which event fires next; declaration order is tie-break priority.
/// With one shard there are never gather, fault or hedge events, so the
/// order degenerates to the single-device runtime's (completion,
/// lifecycle, arrival, flush) — the 1-shard equivalence the tests gate.
#[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy, Debug)]
enum EventKind {
    Completion,
    Gather,
    Lifecycle,
    Fault,
    Hedge,
    Arrival,
    Flush,
}

/// What one device job is doing for the tier. One chunk fans out to one
/// job per shard in the healthy case, but hedges and failovers mean a
/// shard's slice of a chunk can be in flight on several lanes at once —
/// job ids are globally unique and this record maps them back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobRole {
    /// The original fan-out job on the shard's own lane.
    Primary,
    /// A deadline-triggered duplicate racing the primary on a replica.
    Hedge,
    /// A re-execution of work lost to (or blocked by) a crash.
    Failover,
}

#[derive(Debug, Clone, Copy)]
struct JobInfo {
    chunk: u64,
    shard: usize,
    /// Executor index (primary lanes first, then replicas).
    lane: usize,
    role: JobRole,
    /// Whether the kernel has left the FIFO queue.
    started: bool,
    /// Whether this job's start gates the chunk's start accounting.
    /// Primaries count; hedges never do (the race is extra capacity, not
    /// the request's critical path); failovers inherit the slot of the
    /// job they replace.
    counts_start: bool,
}

/// In-flight bookkeeping for one device chunk fanned out over all shards.
struct ChunkState {
    owners: Vec<usize>,
    /// Samples in the chunk (sizes the all-gather).
    rows: u32,
    /// Original per-shard kernel cost, µs — what a hedge or failover
    /// re-submits (the replica runs the identical sub-model; a survivor
    /// loads the dead shard's tables and runs the same fused kernel).
    work_us: Vec<f64>,
    /// Kernel launches per shard, re-counted on re-execution.
    launches_of: Vec<u32>,
    /// Which shards have delivered (first finisher wins) or been
    /// zero-pooled.
    shard_done: Vec<bool>,
    /// Outstanding job ids per shard (primary + hedge + failover).
    active_jobs: Vec<Vec<u64>>,
    pending_shards: usize,
    /// Start-gating slots still open (see [`JobInfo::counts_start`]).
    pending_starts: usize,
    gating_registered: bool,
    any_start: bool,
    /// Latest gating kernel start seen so far. A chunk only counts as
    /// "on the device" once its *gating* (last-starting) lane picked it
    /// up; until then it is queue time, exactly as the single-device
    /// runtime counts its one lane's launch-queue wait.
    start_max_us: f64,
    /// Earliest / latest real per-shard completion seen so far.
    done_min_us: f64,
    done_max_us: f64,
    /// Whether any shard delivered a real (non-zero-pooled) result.
    real_done: bool,
    /// Whether any shard was zero-pooled.
    degraded: bool,
}

struct ShardedRunState {
    /// Primary lanes `0..num_shards`, then replica lanes.
    executors: Vec<DeviceExecutor>,
    lane_stats: Vec<ShardLaneStats>,
    replica_stats: Vec<ShardLaneStats>,
    /// Shard → executor index of its replica lane, if any.
    replica_lane_of: Vec<Option<usize>>,
    records: Vec<Option<ShardedRequestRecord>>,
    remaining_chunks: Vec<u32>,
    first_start_us: Vec<f64>,
    /// Last per-shard kernel completion over the request's chunks.
    device_done_us: Vec<f64>,
    /// Last gather completion over the request's chunks.
    last_done_us: Vec<f64>,
    /// Worst chunk straggler gap over the request's chunks.
    straggler_us: Vec<f64>,
    /// Whether any of the request's chunks was served partial.
    degraded: Vec<bool>,
    arrival_eff_us: Vec<f64>,
    chunks: HashMap<u64, ChunkState>,
    job_info: HashMap<u64, JobInfo>,
    /// Gathers in flight: (completion timestamp, chunk id).
    pending_gathers: Vec<(f64, u64)>,
    /// Hedge deadlines in flight: (fire timestamp, chunk id).
    pending_deadlines: Vec<(f64, u64)>,
    was_crashed: Vec<bool>,
    next_chunk: u64,
    next_job: u64,
    launches: u64,
    hedge_fires: u64,
    hedge_wins: u64,
    failovers: u64,
    /// Requests waiting in the dynamic batcher: owner index plus the
    /// samples it has parked there (the whole batch under `Dynamic`, a
    /// boundary-split head or tail under `DynamicPacked`).
    buffer: Vec<(usize, Batch)>,
    buffer_size: u32,
    buffer_oldest_us: f64,
    /// Drift monitor over full admitted batches (retuning only).
    monitor: Option<DriftMonitor>,
    /// Most recent admitted batches (drift window), oldest first.
    recent: Vec<Batch>,
    /// The lifecycle state machine (present iff retuning is on).
    machine: Option<LifecycleMachine>,
    /// Per-shard candidate engines from the current attempt, awaiting
    /// canary verdict or staged promotion.
    candidates: Vec<Option<Box<dyn Backend>>>,
    /// Per-shard promoted engines. `None` means the lane's built-in
    /// backend serves; run-local so `serve` stays `&self` and replayable.
    promoted: Vec<Option<Box<dyn Backend>>>,
    /// Leaky-bucket state for the degradation ladder's pressure signal.
    pressure: PressureTracker,
}

impl ShardedRunState {
    fn num_shards(&self) -> usize {
        self.lane_stats.len()
    }

    fn all_idle(&self) -> bool {
        self.executors.iter().all(|e| e.is_idle())
    }

    /// The tier's worst effective backlog: device-µs owed divided by the
    /// lane's current throughput. A lane that cannot progress (crash or
    /// stall, rate 0) is infinitely backlogged when nothing will re-home
    /// its work — but with mitigation armed its work moves to hedges,
    /// failovers or the zero-pool, so the lane is *skipped* and the real
    /// pressure shows up on the replica and survivor lanes that absorb
    /// it. At the healthy rate of 1 the division is an exact IEEE
    /// identity, so the fault-free path is bit-for-bit the old
    /// raw-backlog admission test.
    fn max_effective_backlog_us(&self, rt: &ShardedServeRuntime<'_>, _now: f64) -> f64 {
        let mitigated = rt.resilience.ladder.is_some();
        let mut worst = 0.0f64;
        for ex in &self.executors[..self.num_shards()] {
            let backlog = ex.backlog_us();
            if backlog <= 0.0 {
                continue;
            }
            let rate = ex.rate();
            let eff = if rate > 0.0 {
                backlog / rate
            } else if mitigated {
                continue;
            } else {
                f64::INFINITY
            };
            worst = worst.max(eff);
        }
        for ex in &self.executors[self.num_shards()..] {
            worst = worst.max(ex.backlog_us());
        }
        worst
    }

    fn ladder_level(&mut self, rt: &ShardedServeRuntime<'_>, now: f64) -> u8 {
        let Some(ladder) = rt.resilience.ladder else {
            return 0;
        };
        // The rung grades on the configured pressure signal: the raw
        // sample (historical behavior, bit-identical — the tracker is
        // never touched) or a leaky-bucket fold of it, so sub-millisecond
        // backlog spikes can't flip rungs.
        let raw = self.max_effective_backlog_us(rt, now);
        let graded = self.pressure.observe(now, raw, ladder.pressure);
        ladder.level(graded)
    }

    /// The engine serving shard `s`: the promoted candidate if a
    /// lifecycle promotion installed one, else the lane's own backend.
    fn engine_of<'rt>(&'rt self, rt: &'rt ShardedServeRuntime<'_>, s: usize) -> &'rt dyn Backend {
        self.promoted[s]
            .as_deref()
            .unwrap_or(rt.lanes[s].backend.as_ref())
    }

    /// Start a retune attempt: draw the scripted outcome, and — when the
    /// retuner actually produces engines — compile one candidate per
    /// shard against that shard's slice of the recent traffic.
    fn launch_attempt(
        &mut self,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        policy: &mut ShardedRetunePolicy<'_>,
    ) {
        let outcome = match self.machine.as_mut() {
            Some(m) => m.begin_attempt(now),
            None => return,
        };
        if let Some(mon) = self.monitor.as_mut() {
            mon.reset_window();
        }
        match outcome {
            RetuneOutcome::CompileFail | RetuneOutcome::Stall => {
                for c in &mut self.candidates {
                    *c = None;
                }
            }
            RetuneOutcome::Success | RetuneOutcome::Regression { .. } => {
                for s in 0..self.num_shards() {
                    let projected: Vec<Batch> = self
                        .recent
                        .iter()
                        .map(|b| rt.placement.project_batch(b, s))
                        .collect();
                    let tuned = (policy.retuner)(&rt.lanes[s].model, &projected);
                    if let (Some(t), Some(m)) = (tuned.tuning, self.machine.as_mut()) {
                        m.record_tuning(t);
                    }
                    let engine: Box<dyn Backend> =
                        if let RetuneOutcome::Regression { slowdown } = outcome {
                            Box::new(RegressedBackend::new(tuned.backend, slowdown))
                        } else {
                            tuned.backend
                        };
                    self.candidates[s] = Some(engine);
                }
            }
        }
    }

    /// Install every shard's candidate at once (blind swap, or a canary
    /// window that cleared with no stagger).
    fn promote_all_shards(&mut self) -> Result<(), ServeError> {
        for s in 0..self.candidates.len() {
            self.promoted[s] = Some(
                self.candidates[s]
                    .take()
                    .ok_or(ServeError::Internal("promotion without a candidate engine"))?,
            );
        }
        self.rebase_monitor();
        Ok(())
    }

    /// Install one shard's candidate during a staged rollout; the drift
    /// monitor rebases only when the last shard lands.
    fn promote_shard(&mut self, s: usize) -> Result<(), ServeError> {
        self.promoted[s] = Some(
            self.candidates[s]
                .take()
                .ok_or(ServeError::Internal("promotion without a candidate engine"))?,
        );
        if self.machine.as_ref().is_some_and(|m| !m.in_canary()) {
            self.rebase_monitor();
        }
        Ok(())
    }

    /// Drop every candidate *and* every promoted engine: a mid-rollout
    /// abort must restore the incumbent on shards already swapped.
    fn roll_back_engines(&mut self) {
        for c in &mut self.candidates {
            *c = None;
        }
        for p in &mut self.promoted {
            *p = None;
        }
    }

    /// Re-anchor the drift monitor on the traffic the new engines were
    /// tuned for, so the mix that forced the retune reads as baseline.
    fn rebase_monitor(&mut self) {
        if let Some(mon) = self.monitor.as_mut() {
            let (lk, sm) = self.recent.iter().fold((0.0, 0.0), |(l, s), b| {
                (l + b.total_lookups() as f64, s + b.batch_size as f64)
            });
            if sm > 0.0 {
                mon.rebase(lk / sm);
            }
        }
    }

    fn admit(
        &mut self,
        ri: usize,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
        retune: &mut Option<&mut ShardedRetunePolicy<'_>>,
        deadlines: Option<&[f64]>,
    ) -> Result<(), ServeError> {
        let req = &requests[ri];
        self.arrival_eff_us[ri] = if rt.config.closed_loop {
            now
        } else {
            req.arrival_us
        };

        // SLO admission: the slowest shard gates a chunk, so the tier's
        // effective backlog is the worst per-shard backlog. A shed that
        // happens while a fault is active is capacity loss, not traffic —
        // record the reason so chaos reports can tell them apart. A
        // per-request absolute deadline (a pipeline stage's remaining
        // budget share) overrides the uniform config gate.
        let admission_window = match deadlines {
            Some(d) => Some(d[ri] - self.arrival_eff_us[ri]),
            None => rt.config.slo_deadline_us,
        };
        if let Some(deadline) = admission_window {
            if deadline < 0.0 || self.max_effective_backlog_us(rt, now) > deadline {
                let reason = if rt.resilience.plan.any_active(now) {
                    ShedReason::Fault
                } else {
                    ShedReason::Admission
                };
                self.records[ri] = Some(ShardedRequestRecord {
                    base: RequestRecord {
                        id: req.id,
                        batch_size: req.batch.batch_size,
                        arrival_us: self.arrival_eff_us[ri],
                        queue_us: 0.0,
                        service_us: 0.0,
                        done_us: self.arrival_eff_us[ri],
                        shed: reason,
                    },
                    device_us: 0.0,
                    gather_us: 0.0,
                    straggler_us: 0.0,
                    degraded: false,
                });
                return Ok(());
            }
        }

        // Drift monitoring sees every admitted batch (full, pre-fan-out).
        if let Some(policy) = retune.as_deref_mut() {
            self.recent.push(req.batch.clone());
            let window = policy.drift.window.max(1);
            if self.recent.len() > window {
                self.recent.drain(..self.recent.len() - window);
            }
            let drifted = self
                .monitor
                .as_mut()
                .map(|m| m.observe(&req.batch))
                .unwrap_or(false);
            // The machine absorbs fires while an attempt, canary,
            // backoff or cooldown is active.
            let wants = drifted
                && self
                    .machine
                    .as_mut()
                    .is_some_and(|m| m.wants_drift_retune(now));
            if wants {
                self.launch_attempt(now, rt, policy);
            }
        }

        match rt.config.policy {
            BatchPolicy::Unsplit => {
                self.submit_chunk(req.batch.clone(), vec![ri], now, rt, requests)?;
            }
            BatchPolicy::Split { cap } => {
                let chunks = req
                    .batch
                    .split(cap)
                    .map_err(|_| ServeError::Policy("split cap must be at least 1"))?;
                if chunks.is_empty() {
                    self.finalize_empty(ri, now, requests);
                } else {
                    for chunk in chunks {
                        self.submit_chunk(chunk, vec![ri], now, rt, requests)?;
                    }
                }
            }
            BatchPolicy::Dynamic { max_batch, .. } => {
                if req.batch.batch_size == 0 {
                    self.finalize_empty(ri, now, requests);
                } else if req.batch.batch_size >= max_batch {
                    // Oversized: flush waiting small requests first so
                    // device order stays FIFO, then split the big one.
                    self.flush_buffer(now, rt, requests)?;
                    let chunks = req
                        .batch
                        .split(max_batch)
                        .map_err(|_| ServeError::Policy("dynamic max_batch must be at least 1"))?;
                    for chunk in chunks {
                        self.submit_chunk(chunk, vec![ri], now, rt, requests)?;
                    }
                } else {
                    if self.buffer_size + req.batch.batch_size > max_batch {
                        self.flush_buffer(now, rt, requests)?;
                    }
                    self.buffer.push((ri, req.batch.clone()));
                    self.buffer_size += req.batch.batch_size;
                    self.buffer_oldest_us = self.buffer_oldest_us.min(self.arrival_eff_us[ri]);
                    if self.buffer_size == max_batch || self.all_idle() {
                        self.flush_buffer(now, rt, requests)?;
                    }
                }
            }
            BatchPolicy::DynamicPacked { max_batch, .. } => {
                if req.batch.batch_size == 0 {
                    self.finalize_empty(ri, now, requests);
                } else {
                    // Padding-free coalescing: top the open batch off to
                    // exactly `max_batch`, rolling the remainder of a
                    // boundary-straddling request into the next batch.
                    // The invariant `buffer_size < max_batch` holds on
                    // entry and exit, so `room >= 1` always.
                    let mut part = req.batch.clone();
                    loop {
                        let room = max_batch - self.buffer_size;
                        if part.batch_size < room {
                            self.buffer_size += part.batch_size;
                            self.buffer.push((ri, part));
                            self.buffer_oldest_us =
                                self.buffer_oldest_us.min(self.arrival_eff_us[ri]);
                            break;
                        }
                        let mut pieces = part
                            .split(room)
                            .map_err(|_| {
                                ServeError::Policy("dynamic max_batch must be at least 1")
                            })?
                            .into_iter();
                        let head = pieces.next().ok_or(ServeError::Internal(
                            "split of a non-empty batch yielded nothing",
                        ))?;
                        self.buffer.push((ri, head));
                        self.buffer_size = max_batch;
                        self.buffer_oldest_us = self.buffer_oldest_us.min(self.arrival_eff_us[ri]);
                        self.flush_buffer(now, rt, requests)?;
                        let rest: Vec<Batch> = pieces.collect();
                        if rest.is_empty() {
                            break;
                        }
                        part = Batch::merge(&rest);
                    }
                    if !self.buffer.is_empty() && self.all_idle() {
                        self.flush_buffer(now, rt, requests)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn flush_buffer(
        &mut self,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let entries = std::mem::take(&mut self.buffer);
        self.buffer_size = 0;
        self.buffer_oldest_us = f64::INFINITY;
        let owners: Vec<usize> = entries.iter().map(|&(ri, _)| ri).collect();
        let parts: Vec<Batch> = entries.into_iter().map(|(_, b)| b).collect();
        let merged = Batch::merge(&parts);
        self.submit_chunk(merged, owners, now, rt, requests)
    }

    /// Submit one device chunk, re-splitting it first when
    /// `hot_shard_cap` narrows it: every sub-chunk of at most `cap`
    /// samples fans out independently, so the slowest shard gates on a
    /// strictly smaller slice of work per gather and the straggler gap
    /// shrinks where placement is imbalanced. Each sub-chunk keeps the
    /// full owner set — `remaining_chunks` counts per sub-chunk, so
    /// request finalization waits for all of them. `None` takes the
    /// exact historical single-submission path.
    fn submit_chunk(
        &mut self,
        batch: Batch,
        owners: Vec<usize>,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        match rt.config.hot_shard_cap {
            Some(cap) if batch.batch_size > cap => {
                let parts = batch
                    .split(cap)
                    .map_err(|_| ServeError::Policy("hot_shard_cap must be at least 1"))?;
                for part in parts {
                    self.submit_chunk_inner(part, owners.clone(), now, rt, requests)?;
                }
                Ok(())
            }
            _ => self.submit_chunk_inner(batch, owners, now, rt, requests),
        }
    }

    /// Fan one device chunk out over every shard. Shards crashed at
    /// submission time (under mitigation) never see the job — their slice
    /// goes straight to a replica, a survivor, or the zero-pool.
    fn submit_chunk_inner(
        &mut self,
        batch: Batch,
        owners: Vec<usize>,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        let num_shards = rt.placement.num_devices;
        let chunk_id = self.next_chunk;
        self.next_chunk += 1;
        for &ri in &owners {
            self.remaining_chunks[ri] += 1;
        }
        let mut work_us = Vec::with_capacity(num_shards);
        let mut launches_of = Vec::with_capacity(num_shards);
        for dev in 0..num_shards {
            let sub_batch = rt.placement.project_batch(&batch, dev);
            let lane = &rt.lanes[dev];
            let run =
                self.engine_of(rt, dev)
                    .run(&lane.model, &lane.tables, &sub_batch, rt.arch)?;
            work_us.push(run.latency_us);
            launches_of.push(run.kernel_launches);
        }

        // Canary: candidate engines replay the same shard slices so
        // their cost is observable. In shadow mode (the default) the
        // results are never submitted to a device — accounted, not
        // served. In split-traffic mode ([`CanaryConfig::split_traffic`])
        // the canaried chunk is *served by the candidate* on its shard:
        // the candidate's device time replaces the incumbent's in the
        // real queue, so the verdict reflects actual queueing. Shards
        // already promoted mid-rollout are skipped (their cost is now
        // `work_us`).
        let wants_shadow = self
            .machine
            .as_mut()
            .is_some_and(LifecycleMachine::should_shadow);
        if wants_shadow {
            let start = self
                .machine
                .as_ref()
                .map_or(0, LifecycleMachine::promoted_shards);
            let split = self
                .machine
                .as_ref()
                .is_some_and(LifecycleMachine::split_traffic);
            let mut inc = vec![0.0; num_shards];
            let mut cand = vec![0.0; num_shards];
            let mut shadow_err = false;
            for s in start..num_shards {
                let Some(engine) = self.candidates[s].as_ref() else {
                    continue;
                };
                let sub_batch = rt.placement.project_batch(&batch, s);
                let lane = &rt.lanes[s];
                match engine.run(&lane.model, &lane.tables, &sub_batch, rt.arch) {
                    Ok(r) => {
                        inc[s] = work_us[s];
                        cand[s] = r.latency_us;
                        if split {
                            work_us[s] = r.latency_us;
                        }
                    }
                    Err(_) => {
                        shadow_err = true;
                        break;
                    }
                }
            }
            let verdict = match self.machine.as_mut() {
                Some(machine) if shadow_err => {
                    machine.force_rollback(now);
                    CanaryVerdict::RollBack
                }
                Some(machine) => machine.observe_canary(now, &inc, &cand),
                None => CanaryVerdict::Pending,
            };
            if verdict == CanaryVerdict::RollBack {
                self.roll_back_engines();
            }
        }
        self.chunks.insert(
            chunk_id,
            ChunkState {
                owners,
                rows: batch.batch_size,
                work_us,
                launches_of,
                shard_done: vec![false; num_shards],
                active_jobs: vec![Vec::new(); num_shards],
                pending_shards: num_shards,
                pending_starts: 0,
                gating_registered: false,
                any_start: false,
                start_max_us: 0.0,
                done_min_us: f64::INFINITY,
                done_max_us: 0.0,
                real_done: false,
                degraded: false,
            },
        );
        let mitigated = rt.resilience.ladder.is_some();
        for s in 0..num_shards {
            if mitigated && rt.resilience.plan.crashed(s, now) {
                self.dispatch_replacement(chunk_id, s, now, rt, requests, true)?;
            } else {
                let lane = self.read_lane(s, now, rt);
                self.submit_job(chunk_id, s, lane, now, JobRole::Primary, true)?;
            }
        }
        if let Some(ddl) = rt.resilience.chunk_deadline_us {
            if !rt.replicas.is_empty() && self.chunks.contains_key(&chunk_id) {
                self.pending_deadlines.push((now + ddl, chunk_id));
            }
        }
        // Zero-cost shard kernels retire inside `submit`; collect them so
        // their owners don't wait for a completion event that may never
        // have a distinct timestamp.
        self.collect_completions(rt, requests)
    }

    /// The lane that serves shard `s`'s slice of a fresh chunk. Replicas
    /// are cold standbys by default; with
    /// [`ResilienceConfig::replica_reads`] on, a *healthy* tier spills
    /// read traffic to the mirrored replica lane whenever the primary is
    /// more backlogged. Drain-on-fault: any active fault window anywhere
    /// in the tier pins reads back to the primaries, so replicas are
    /// free to absorb failover and hedge traffic exactly when it
    /// matters. Ties go to the primary, keeping the choice a pure
    /// function of simulated state.
    fn read_lane(&self, s: usize, now: f64, rt: &ShardedServeRuntime<'_>) -> usize {
        if !rt.resilience.replica_reads {
            return s;
        }
        let Some(replica) = self.replica_lane_of[s] else {
            return s;
        };
        if rt.resilience.plan.any_active(now) {
            return s;
        }
        if self.executors[replica].backlog_us() < self.executors[s].backlog_us() {
            replica
        } else {
            s
        }
    }

    /// Put `shard`'s slice of `chunk_id` on executor `lane`.
    fn submit_job(
        &mut self,
        chunk_id: u64,
        shard: usize,
        lane: usize,
        now: f64,
        role: JobRole,
        counts_start: bool,
    ) -> Result<(), ServeError> {
        let id = self.next_job;
        self.next_job += 1;
        let (work, kernels) = {
            let chunk = self
                .chunks
                .get_mut(&chunk_id)
                .ok_or(ServeError::Internal("job for live chunk"))?;
            chunk.active_jobs[shard].push(id);
            if counts_start {
                chunk.pending_starts += 1;
            }
            (chunk.work_us[shard], chunk.launches_of[shard])
        };
        self.job_info.insert(
            id,
            JobInfo {
                chunk: chunk_id,
                shard,
                lane,
                role,
                started: false,
                counts_start,
            },
        );
        self.launches += u64::from(kernels);
        self.executors[lane].submit(now, id, work);
        let num_shards = self.num_shards();
        let backlog = self.executors[lane].backlog_us();
        let depth = self.executors[lane].depth();
        let stats = if lane < num_shards {
            &mut self.lane_stats[lane]
        } else {
            &mut self.replica_stats[lane - num_shards]
        };
        stats.jobs += 1;
        stats.device_us += work;
        stats.max_backlog_us = stats.max_backlog_us.max(backlog);
        stats.max_queue_depth = stats.max_queue_depth.max(depth);
        Ok(())
    }

    /// Re-home `shard`'s slice of a chunk after a crash took (or blocks)
    /// its primary job: replica lane if one exists, else the
    /// least-backlogged healthy survivor, else — or past ladder level 2 —
    /// the zero-pool.
    fn dispatch_replacement(
        &mut self,
        chunk_id: u64,
        shard: usize,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
        counts_start: bool,
    ) -> Result<(), ServeError> {
        let Some(chunk) = self.chunks.get(&chunk_id) else {
            return Ok(());
        };
        if chunk.shard_done[shard] {
            return Ok(());
        }
        if self.ladder_level(rt, now) >= 2 {
            return self.zero_pool(chunk_id, shard, now, rt, requests);
        }
        let target = self.replica_lane_of[shard].or_else(|| {
            let mut best: Option<(f64, usize)> = None;
            for s2 in 0..self.num_shards() {
                if s2 == shard || rt.resilience.plan.crashed(s2, now) {
                    continue;
                }
                let b = self.executors[s2].backlog_us();
                if best.is_none_or(|(bb, _)| b < bb) {
                    best = Some((b, s2));
                }
            }
            best.map(|(_, s2)| s2)
        });
        match target {
            Some(lane) => {
                self.failovers += 1;
                self.lane_stats[shard].failovers += 1;
                self.submit_job(chunk_id, shard, lane, now, JobRole::Failover, counts_start)
            }
            None => self.zero_pool(chunk_id, shard, now, rt, requests),
        }
    }

    /// Serve `shard`'s slice of `chunk_id` as zeros: for sum/mean pooling
    /// a missing shard contributes an all-zero segment to the
    /// concatenated embedding, so the chunk stays answerable — flagged
    /// degraded — without any device work.
    fn zero_pool(
        &mut self,
        chunk_id: u64,
        shard: usize,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        let (siblings, resolved) = {
            let Some(chunk) = self.chunks.get_mut(&chunk_id) else {
                return Ok(());
            };
            if chunk.shard_done[shard] {
                return Ok(());
            }
            chunk.shard_done[shard] = true;
            chunk.degraded = true;
            chunk.pending_shards -= 1;
            (
                std::mem::take(&mut chunk.active_jobs[shard]),
                chunk.pending_shards == 0,
            )
        };
        for j in siblings {
            if let Some(info) = self.job_info.remove(&j) {
                self.executors[info.lane].cancel(now, j);
                if info.counts_start && !info.started {
                    self.uncount_start(chunk_id);
                }
            }
        }
        if resolved {
            self.resolve_chunk(chunk_id, now, rt, requests)?;
        }
        Ok(())
    }

    /// A crash dropped every kernel on lane `s`; re-home each lost
    /// chunk-shard work item (unless a surviving sibling — a hedge on a
    /// replica, or a job on a lane that isn't crashing too — already
    /// covers it).
    fn crash_begin(
        &mut self,
        s: usize,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        let num_shards = self.num_shards();
        let failed = self.executors[s].fail_all(now);
        for job in failed {
            let Some(info) = self.job_info.remove(&job) else {
                continue;
            };
            let still_needed = {
                let Some(chunk) = self.chunks.get_mut(&info.chunk) else {
                    continue;
                };
                chunk.active_jobs[info.shard].retain(|&j| j != job);
                !chunk.shard_done[info.shard]
            };
            let covered = self.chunks[&info.chunk].active_jobs[info.shard]
                .iter()
                .any(|j| {
                    self.job_info.get(j).is_some_and(|i| {
                        i.lane >= num_shards || !rt.resilience.plan.crashed(i.lane, now)
                    })
                });
            let replace_counts = info.counts_start && !info.started;
            if replace_counts {
                self.uncount_start(info.chunk);
            }
            if still_needed && !covered {
                self.dispatch_replacement(
                    info.chunk,
                    info.shard,
                    now,
                    rt,
                    requests,
                    replace_counts,
                )?;
            }
        }
        Ok(())
    }

    /// Fire every hedge deadline due at `now`: shards that have not
    /// delivered their slice get a duplicate on their replica lane —
    /// unless the ladder has already dropped the hedge.
    fn fire_deadlines(
        &mut self,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        let mut due: Vec<(f64, u64)> = Vec::new();
        self.pending_deadlines.retain(|&(t, id)| {
            if t <= now {
                due.push((t, id));
                false
            } else {
                true
            }
        });
        due.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (_, chunk_id) in due {
            if !self.chunks.contains_key(&chunk_id) {
                continue;
            }
            if self.ladder_level(rt, now) >= 1 {
                continue; // rung 1: duplicate work is the wrong spend
            }
            for s in 0..self.num_shards() {
                let Some(replica_lane) = self.replica_lane_of[s] else {
                    continue;
                };
                let wants_hedge = {
                    let chunk = &self.chunks[&chunk_id];
                    !chunk.shard_done[s]
                        && !chunk.active_jobs[s]
                            .iter()
                            .any(|j| self.job_info.get(j).is_some_and(|i| i.lane == replica_lane))
                };
                if wants_hedge {
                    self.hedge_fires += 1;
                    self.submit_job(chunk_id, s, replica_lane, now, JobRole::Hedge, false)?;
                }
            }
        }
        self.collect_completions(rt, requests)
    }

    /// Apply every fault state change at `now`: lane rates (slowdown,
    /// stall, crash freeze) and crash onset/recovery.
    fn apply_fault_transitions(
        &mut self,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        let mitigated = rt.resilience.ladder.is_some();
        for s in 0..self.num_shards() {
            let crashed = rt.resilience.plan.crashed(s, now);
            // Without mitigation a crash freezes the lane with its queue
            // intact — the restart-from-checkpoint model: the work is
            // replayed after recovery, and the tier pays for it in
            // backlog (and SLO sheds) instead of re-homing it.
            let rate = if crashed {
                0.0
            } else {
                rt.resilience.plan.rate_of(s, now)
            };
            self.executors[s].set_rate(now, rate);
            if crashed && !self.was_crashed[s] {
                self.was_crashed[s] = true;
                if mitigated {
                    self.crash_begin(s, now, rt, requests)?;
                }
            } else if !crashed && self.was_crashed[s] {
                self.was_crashed[s] = false;
            }
        }
        self.collect_completions(rt, requests)
    }

    /// Drain per-shard completions, resolve finished chunks, and either
    /// finalize them (1 shard / free gather) or start their all-gather.
    /// Loops until quiescent: cancelling a raced sibling can promote
    /// zero-cost queued work whose completion must also land this event.
    fn collect_completions(
        &mut self,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        loop {
            self.note_starts();
            let mut any = false;
            let mut resolved: Vec<(u64, f64)> = Vec::new();
            for lane in 0..self.executors.len() {
                for (t_done, job_id) in self.executors[lane].drain_completed() {
                    any = true;
                    let Some(info) = self.job_info.remove(&job_id) else {
                        continue; // lost a race that was resolved earlier
                    };
                    let (siblings, resolve) = {
                        let Some(chunk) = self.chunks.get_mut(&info.chunk) else {
                            continue;
                        };
                        chunk.active_jobs[info.shard].retain(|&j| j != job_id);
                        if chunk.shard_done[info.shard] {
                            continue; // a sibling already delivered
                        }
                        chunk.shard_done[info.shard] = true;
                        chunk.pending_shards -= 1;
                        chunk.done_min_us = chunk.done_min_us.min(t_done);
                        chunk.done_max_us = chunk.done_max_us.max(t_done);
                        chunk.real_done = true;
                        (
                            std::mem::take(&mut chunk.active_jobs[info.shard]),
                            chunk.pending_shards == 0,
                        )
                    };
                    if info.role == JobRole::Hedge {
                        self.hedge_wins += 1;
                    }
                    for j in siblings {
                        if let Some(sib) = self.job_info.remove(&j) {
                            self.executors[sib.lane].cancel(t_done, j);
                            if sib.counts_start && !sib.started {
                                self.uncount_start(info.chunk);
                            }
                        }
                    }
                    if resolve {
                        resolved.push((info.chunk, t_done));
                    }
                }
            }
            for (chunk_id, t) in resolved {
                self.resolve_chunk(chunk_id, t, rt, requests)?;
            }
            if !any {
                break;
            }
        }
        Ok(())
    }

    /// Every shard has delivered (or been zero-pooled): account the
    /// chunk's device phase and start its gather (or retire it).
    fn resolve_chunk(
        &mut self,
        chunk_id: u64,
        fallback_t: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        let chunk = self
            .chunks
            .remove(&chunk_id)
            .ok_or(ServeError::Internal("resolving live chunk"))?;
        let num_shards = rt.placement.num_devices;
        let base_t = if chunk.real_done {
            chunk.done_max_us
        } else {
            // Every shard zero-pooled: the chunk resolves at the ladder
            // decision instant with no device completion to anchor on.
            fallback_t
        };
        let out_bytes = rt.model.concat_dim() as u64 * chunk.rows as u64 * 4;
        let factor = rt.resilience.plan.link_factor(base_t);
        let gather_us = if factor > 1.0 {
            rt.interconnect
                .degrade(factor)
                .all_gather_us(out_bytes, num_shards)
        } else {
            rt.interconnect.all_gather_us(out_bytes, num_shards)
        };
        let straggler = if chunk.real_done {
            chunk.done_max_us - chunk.done_min_us
        } else {
            0.0
        };
        for &ri in &chunk.owners {
            self.device_done_us[ri] = self.device_done_us[ri].max(base_t);
            self.straggler_us[ri] = self.straggler_us[ri].max(straggler);
            if chunk.degraded {
                self.degraded[ri] = true;
            }
        }
        if gather_us > 0.0 {
            self.pending_gathers.push((base_t + gather_us, chunk_id));
            self.chunks.insert(chunk_id, chunk);
        } else {
            // One shard (or an ideal link): the chunk is done the
            // moment the device finishes — exactly the
            // single-device runtime's event sequence.
            self.retire_chunk(&chunk, base_t, requests);
        }
        Ok(())
    }

    /// Retire every gather due at `now` (submission order on ties).
    fn retire_gathers(&mut self, now: f64, requests: &[Request]) -> Result<(), ServeError> {
        let mut due: Vec<(f64, u64)> = Vec::new();
        self.pending_gathers.retain(|&(t, id)| {
            if t <= now {
                due.push((t, id));
                false
            } else {
                true
            }
        });
        due.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (t, chunk_id) in due {
            let chunk = self
                .chunks
                .remove(&chunk_id)
                .ok_or(ServeError::Internal("gather chunk state"))?;
            self.retire_chunk(&chunk, t, requests);
        }
        Ok(())
    }

    fn retire_chunk(&mut self, chunk: &ChunkState, done_us: f64, requests: &[Request]) {
        for &ri in &chunk.owners {
            self.remaining_chunks[ri] -= 1;
            self.last_done_us[ri] = self.last_done_us[ri].max(done_us);
            if self.remaining_chunks[ri] == 0 {
                self.finalize(ri, requests);
            }
        }
    }

    /// Fold freshly drained kernel-start events into per-request first
    /// *gating* start times: a chunk starts when its last gating lane
    /// picks it up, and a request starts at its earliest chunk start.
    fn note_starts(&mut self) {
        for lane in 0..self.executors.len() {
            for (t_start, job_id) in self.executors[lane].drain_started() {
                let (chunk_id, counts) = {
                    let Some(info) = self.job_info.get_mut(&job_id) else {
                        continue; // cancelled after queueing its start
                    };
                    info.started = true;
                    (info.chunk, info.counts_start)
                };
                if !counts {
                    continue; // hedge starts don't gate the request
                }
                let register = {
                    let Some(chunk) = self.chunks.get_mut(&chunk_id) else {
                        continue;
                    };
                    chunk.any_start = true;
                    chunk.start_max_us = chunk.start_max_us.max(t_start);
                    chunk.pending_starts -= 1;
                    if chunk.pending_starts == 0 && !chunk.gating_registered {
                        chunk.gating_registered = true;
                        Some((chunk.owners.clone(), chunk.start_max_us))
                    } else {
                        None
                    }
                };
                if let Some((owners, gating)) = register {
                    for ri in owners {
                        self.first_start_us[ri] = self.first_start_us[ri].min(gating);
                    }
                }
            }
        }
    }

    /// A gating-start slot closed without a start event (its job was
    /// killed or zero-pooled before launching): if it was the last open
    /// slot, register the gating start from what did launch.
    fn uncount_start(&mut self, chunk_id: u64) {
        let register = {
            let Some(chunk) = self.chunks.get_mut(&chunk_id) else {
                return;
            };
            chunk.pending_starts -= 1;
            if chunk.pending_starts == 0 && !chunk.gating_registered && chunk.any_start {
                chunk.gating_registered = true;
                Some((chunk.owners.clone(), chunk.start_max_us))
            } else {
                None
            }
        };
        if let Some((owners, gating)) = register {
            for ri in owners {
                self.first_start_us[ri] = self.first_start_us[ri].min(gating);
            }
        }
    }

    fn finalize(&mut self, ri: usize, requests: &[Request]) {
        let arrival = self.arrival_eff_us[ri];
        let done = self.last_done_us[ri];
        // A request whose every chunk was fully zero-pooled never saw a
        // kernel start; treat it as starting at completion (zero service).
        let first = if self.first_start_us[ri].is_finite() {
            self.first_start_us[ri]
        } else {
            done
        };
        let device_done = self.device_done_us[ri];
        self.records[ri] = Some(ShardedRequestRecord {
            base: RequestRecord {
                id: requests[ri].id,
                batch_size: requests[ri].batch.batch_size,
                arrival_us: arrival,
                queue_us: first - arrival,
                service_us: done - first,
                done_us: done,
                shed: ShedReason::None,
            },
            device_us: device_done - first,
            gather_us: done - device_done,
            straggler_us: self.straggler_us[ri],
            degraded: self.degraded[ri],
        });
    }

    fn finalize_empty(&mut self, ri: usize, now: f64, requests: &[Request]) {
        self.records[ri] = Some(ShardedRequestRecord {
            base: RequestRecord {
                id: requests[ri].id,
                batch_size: 0,
                arrival_us: self.arrival_eff_us[ri],
                queue_us: 0.0,
                service_us: 0.0,
                done_us: now,
                shed: ShedReason::None,
            },
            device_us: 0.0,
            gather_us: 0.0,
            straggler_us: 0.0,
            degraded: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{
        Fault, FaultKind, FaultPlan, FaultSpec, LadderConfig, PressureSignal, ReplicationPolicy,
    };
    use crate::lifecycle::{CanaryConfig, LifecycleEvent, OutcomePlan};
    use crate::request::WorkloadSpec;
    use crate::runtime::{RetunePolicy, ServeRuntime};
    use proptest::prelude::*;
    use recflex_baselines::TorchRecBackend;
    use recflex_data::shift_distribution;
    use recflex_data::ModelPreset;

    fn setup() -> (ModelConfig, GpuArch) {
        (ModelPreset::A.scaled(0.01), GpuArch::v100())
    }

    fn tier<'a>(
        model: &'a ModelConfig,
        arch: &'a GpuArch,
        shards: usize,
        config: ServeConfig,
        interconnect: Interconnect,
    ) -> ShardedServeRuntime<'a> {
        ShardedServeRuntime::build(
            model,
            arch,
            Placement::balance(model, shards),
            config,
            interconnect,
            |m| Box::new(TorchRecBackend::compile(m)),
        )
    }

    fn resilient_tier<'a>(
        model: &'a ModelConfig,
        arch: &'a GpuArch,
        shards: usize,
        config: ServeConfig,
        resilience: ResilienceConfig,
    ) -> ShardedServeRuntime<'a> {
        ShardedServeRuntime::build_resilient(
            model,
            arch,
            Placement::balance(model, shards),
            config,
            Interconnect::nvlink(),
            resilience,
            &vec![1.0; model.features.len()],
            |m| Box::new(TorchRecBackend::compile(m)),
        )
    }

    fn load_config() -> ServeConfig {
        ServeConfig {
            streams: 4,
            policy: BatchPolicy::Split { cap: 256 },
            slo_deadline_us: None,
            closed_loop: false,
            hot_shard_cap: None,
        }
    }

    fn crash(shard: usize, start: f64, end: f64) -> Fault {
        Fault {
            start_us: start,
            end_us: end,
            kind: FaultKind::Crash { shard },
        }
    }

    #[test]
    fn one_shard_reproduces_single_device_latencies_bit_for_bit() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 40, 42);
        for policy in [
            BatchPolicy::Unsplit,
            BatchPolicy::Split { cap: 128 },
            BatchPolicy::Dynamic {
                max_batch: 256,
                max_wait_us: 200.0,
            },
            BatchPolicy::DynamicPacked {
                max_batch: 256,
                max_wait_us: 200.0,
            },
        ] {
            let config = ServeConfig {
                streams: 4,
                policy,
                slo_deadline_us: Some(20_000.0),
                closed_loop: false,
                hot_shard_cap: None,
            };
            let sharded = tier(&m, &arch, 1, config, Interconnect::nvlink()).serve(&reqs)?;
            let backend = TorchRecBackend::compile(&m);
            let tables = TableSet::for_model(&m);
            let single = ServeRuntime {
                backend: &backend,
                model: &m,
                tables: &tables,
                arch: &arch,
                config,
            }
            .serve(&reqs)?;
            assert_eq!(sharded.flat(), single, "policy {policy:?}");
            assert!(sharded.records.iter().all(|r| r.gather_us == 0.0));
            assert!(sharded.records.iter().all(|r| r.straggler_us == 0.0));
        }
        Ok(())
    }

    #[test]
    fn one_shard_with_explicit_empty_resilience_matches_serve_runtime_bit_for_bit(
    ) -> Result<(), ServeError> {
        // The satellite guard: ReplicationPolicy::None + an empty
        // FaultPlan through the resilient constructor must still be the
        // single-device runtime, record for record.
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 32, 11);
        let config = ServeConfig {
            streams: 4,
            policy: BatchPolicy::Split { cap: 128 },
            slo_deadline_us: Some(20_000.0),
            closed_loop: false,
            hot_shard_cap: None,
        };
        let resilience = ResilienceConfig {
            plan: FaultPlan::none(),
            chunk_deadline_us: None,
            replication: ReplicationPolicy::None,
            ladder: None,
            replica_reads: false,
        };
        let sharded = resilient_tier(&m, &arch, 1, config, resilience).serve(&reqs)?;
        let backend = TorchRecBackend::compile(&m);
        let tables = TableSet::for_model(&m);
        let single = ServeRuntime {
            backend: &backend,
            model: &m,
            tables: &tables,
            arch: &arch,
            config,
        }
        .serve(&reqs)?;
        assert_eq!(sharded.flat(), single);
        assert!(sharded.records.iter().all(|r| !r.degraded));
        assert_eq!(sharded.hedge_fires, 0);
        assert_eq!(sharded.failovers, 0);
        assert!(sharded.per_replica.is_empty());
        Ok(())
    }

    #[test]
    fn no_fault_resilient_path_is_bit_for_bit_the_plain_tier() -> Result<(), ServeError> {
        // Replicas provisioned and mitigation armed, but no faults and no
        // deadline: the event loop must take the exact fault-free
        // branches and reproduce the plain tier's report fields.
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(250.0).stream(&m, 48, 7);
        let plain = tier(&m, &arch, 4, load_config(), Interconnect::nvlink()).serve(&reqs)?;
        let armed = resilient_tier(
            &m,
            &arch,
            4,
            load_config(),
            ResilienceConfig {
                plan: FaultPlan::none(),
                chunk_deadline_us: None,
                replication: ReplicationPolicy::Full,
                ladder: Some(LadderConfig::failover_only()),
                replica_reads: false,
            },
        )
        .serve(&reqs)?;
        assert_eq!(plain.records, armed.records);
        assert_eq!(plain.per_shard, armed.per_shard);
        assert_eq!(plain.kernel_launches, armed.kernel_launches);
        assert_eq!(plain.makespan_us, armed.makespan_us);
        assert_eq!(armed.per_replica.len(), 4, "standby lanes exist");
        assert!(armed.per_replica.iter().all(|s| s.jobs == 0), "and idle");
        Ok(())
    }

    #[test]
    fn replica_reads_spread_load_onto_replica_lanes() -> Result<(), ServeError> {
        // With replica_reads on and no faults, a loaded healthy tier
        // spills primary read traffic onto the mirrored replica lanes —
        // they stop being cold standbys — and the extra capacity must
        // not hurt latency. The run stays a pure function of its inputs.
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(120.0).stream(&m, 48, 21);
        let with_reads = |replica_reads: bool| ResilienceConfig {
            plan: FaultPlan::none(),
            chunk_deadline_us: None,
            replication: ReplicationPolicy::Full,
            ladder: Some(LadderConfig::failover_only()),
            replica_reads,
        };
        let cold = resilient_tier(&m, &arch, 2, load_config(), with_reads(false)).serve(&reqs)?;
        let warm_rt = resilient_tier(&m, &arch, 2, load_config(), with_reads(true));
        let warm = warm_rt.serve(&reqs)?;
        assert!(
            warm.per_replica.iter().any(|s| s.jobs > 0),
            "replica lanes must serve read traffic"
        );
        assert_eq!(warm.shed_rate(), 0.0);
        assert_eq!(warm.records.len(), 48);
        assert!(
            warm.flat().mean_latency_us() <= cold.flat().mean_latency_us() + 1e-9,
            "doubling serving lanes must not slow the tier: warm {} vs cold {}",
            warm.flat().mean_latency_us(),
            cold.flat().mean_latency_us()
        );
        let replay = warm_rt.serve(&reqs)?;
        assert_eq!(warm, replay, "replica reads replay bit-for-bit");
        Ok(())
    }

    #[test]
    fn replica_reads_drain_to_primaries_while_any_fault_is_active() -> Result<(), ServeError> {
        // Drain-on-fault: a fault window covering the whole run pins
        // every read on the primaries, so the replicas see zero read
        // jobs even with replica_reads enabled. (A slowdown on shard 0
        // never re-homes work by itself — only reads could have landed
        // on the replicas, and the drain rule forbids exactly that.)
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(200.0).stream(&m, 32, 5);
        let resilience = ResilienceConfig {
            plan: FaultPlan::scripted(vec![Fault {
                start_us: 0.0,
                end_us: 1e12,
                kind: FaultKind::Slowdown {
                    shard: 0,
                    rate: 0.9,
                },
            }]),
            chunk_deadline_us: None,
            replication: ReplicationPolicy::Full,
            ladder: Some(LadderConfig::failover_only()),
            replica_reads: true,
        };
        let report = resilient_tier(&m, &arch, 2, load_config(), resilience).serve(&reqs)?;
        assert!(
            report.per_replica.iter().all(|s| s.jobs == 0),
            "an active fault must drain reads off the replicas"
        );
        assert_eq!(report.records.len(), 32);
        Ok(())
    }

    #[test]
    fn replaying_a_seed_reproduces_the_report_bit_for_bit() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(250.0).stream(&m, 48, 7);
        let rt = tier(&m, &arch, 4, load_config(), Interconnect::nvlink());
        let a = rt.serve(&reqs)?;
        let b = rt.serve(&reqs)?;
        assert_eq!(a, b);
        assert_eq!(a.records.len(), 48);
        assert_eq!(a.per_shard.len(), 4);
        Ok(())
    }

    #[test]
    fn more_shards_cut_device_time_under_load() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(150.0).stream(&m, 48, 9);
        let p50 = |shards: usize| {
            tier(&m, &arch, shards, load_config(), Interconnect::nvlink())
                .serve(&reqs)
                .map(|r| r.percentile_device_us(0.5))
        };
        let one = p50(1)?;
        let two = p50(2)?;
        let four = p50(4)?;
        assert!(two <= one, "2 shards {two} vs 1 shard {one}");
        assert!(four <= two, "4 shards {four} vs 2 shards {two}");
        Ok(())
    }

    #[test]
    fn gather_and_straggler_terms_appear_with_multiple_shards() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(400.0).stream(&m, 24, 3);
        let report = tier(&m, &arch, 4, load_config(), Interconnect::nvlink()).serve(&reqs)?;
        assert!(report.mean_gather_us() > 0.0, "gather must be accounted");
        assert!(
            report.mean_straggler_us() > 0.0,
            "heterogeneous shards must straggle"
        );
        // The breakdown is additive on the critical path.
        for r in report.completed() {
            let sum = r.base.queue_us + r.device_us + r.gather_us;
            assert!(
                (r.base.latency_us() - sum).abs() < 1e-6,
                "queue {} + device {} + gather {} != latency {}",
                r.base.queue_us,
                r.device_us,
                r.gather_us,
                r.base.latency_us()
            );
        }
        Ok(())
    }

    #[test]
    fn slower_interconnect_raises_tail_latency() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 32, 5);
        let p99 = |link: Interconnect| {
            tier(&m, &arch, 4, load_config(), link)
                .serve(&reqs)
                .map(|r| r.percentile_us(0.99))
        };
        assert!(p99(Interconnect::pcie())? > p99(Interconnect::nvlink())?);
        assert!(p99(Interconnect::nvlink())? > p99(Interconnect::ideal())?);
        Ok(())
    }

    #[test]
    fn per_shard_stats_cover_every_chunk() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 24, 13);
        let report = tier(&m, &arch, 3, load_config(), Interconnect::nvlink()).serve(&reqs)?;
        let jobs: Vec<u64> = report.per_shard.iter().map(|s| s.jobs).collect();
        // Every chunk fans out to every shard.
        assert!(jobs.iter().all(|&j| j == jobs[0] && j > 0));
        assert!(report.per_shard.iter().all(|s| s.device_us > 0.0));
        assert!(report.per_shard.iter().all(|s| s.max_queue_depth >= 1));
        Ok(())
    }

    #[test]
    fn slo_shedding_works_in_the_sharded_tier() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs: Vec<Request> = (0..40)
            .map(|i| Request {
                id: i,
                arrival_us: i as f64,
                batch: Batch::generate(&m, 512, 3000 + i),
            })
            .collect();
        let config = ServeConfig {
            streams: 2,
            policy: BatchPolicy::Split { cap: 128 },
            slo_deadline_us: Some(2_000.0),
            closed_loop: false,
            hot_shard_cap: None,
        };
        let report = tier(&m, &arch, 2, config, Interconnect::nvlink()).serve(&reqs)?;
        assert!(report.shed_rate() > 0.0, "overload must shed");
        for r in report.records.iter().filter(|r| r.base.is_shed()) {
            assert_eq!(r.base.shed, ShedReason::Admission, "no faults injected");
            assert_eq!(r.base.done_us, r.base.arrival_us);
            assert_eq!(r.device_us, 0.0);
        }
        Ok(())
    }

    #[test]
    fn zero_split_cap_is_a_policy_error() {
        let (m, arch) = setup();
        let config = ServeConfig {
            streams: 1,
            policy: BatchPolicy::Split { cap: 0 },
            slo_deadline_us: None,
            closed_loop: false,
            hot_shard_cap: None,
        };
        let rt = tier(&m, &arch, 2, config, Interconnect::nvlink());
        let reqs = WorkloadSpec::long_tail(100.0).stream(&m, 2, 1);
        assert!(matches!(rt.serve(&reqs), Err(ServeError::Policy(_))));
    }

    fn slo_config() -> ServeConfig {
        ServeConfig {
            streams: 4,
            policy: BatchPolicy::Split { cap: 256 },
            slo_deadline_us: Some(8_000.0),
            closed_loop: false,
            hot_shard_cap: None,
        }
    }

    fn crash_window(m: &ModelConfig) -> FaultPlan {
        // Crash shard 0 for a long mid-run window sized off the workload
        // (requests arrive roughly every 200 µs for 64 requests).
        let _ = m;
        FaultPlan::scripted(vec![crash(0, 1_500.0, 9_000.0)])
    }

    #[test]
    fn mitigated_crash_holds_availability_where_no_mitigation_sheds() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(200.0).stream(&m, 64, 21);
        let baseline = resilient_tier(
            &m,
            &arch,
            2,
            slo_config(),
            ResilienceConfig {
                plan: crash_window(&m),
                chunk_deadline_us: None,
                replication: ReplicationPolicy::None,
                ladder: None, // no mitigation: lane freezes, backlog sheds
                replica_reads: false,
            },
        )
        .serve(&reqs)?;
        let mitigated = resilient_tier(
            &m,
            &arch,
            2,
            slo_config(),
            ResilienceConfig {
                plan: crash_window(&m),
                chunk_deadline_us: None,
                replication: ReplicationPolicy::Full,
                ladder: Some(LadderConfig {
                    drop_hedge_backlog_us: 4_000.0,
                    partial_backlog_us: 6_000.0,
                    pressure: PressureSignal::Instantaneous,
                }),
                replica_reads: false,
            },
        )
        .serve(&reqs)?;
        assert!(
            baseline.availability() < 1.0,
            "an unmitigated crash must shed: availability {}",
            baseline.availability()
        );
        assert!(
            baseline.shed_rate_for(ShedReason::Fault) > 0.0,
            "sheds during the crash window carry the fault reason"
        );
        assert!(
            mitigated.availability() >= 0.95,
            "failover + degradation must hold availability: {}",
            mitigated.availability()
        );
        assert!(
            mitigated.availability() > baseline.availability(),
            "mitigation must strictly beat the baseline: {} vs {}",
            mitigated.availability(),
            baseline.availability()
        );
        assert!(mitigated.failovers > 0, "crash work must be re-homed");
        assert!(
            mitigated.per_shard[0].downtime_us > 0.0,
            "the crashed shard reports downtime"
        );
        assert_eq!(
            mitigated.per_shard[1].downtime_us, 0.0,
            "the healthy shard reports none"
        );
        Ok(())
    }

    #[test]
    fn hedging_fires_on_deadline_and_wins_against_a_stalled_shard() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(400.0).stream(&m, 32, 17);
        let plan = FaultPlan::scripted(vec![Fault {
            start_us: 1_000.0,
            end_us: 10_000.0,
            kind: FaultKind::Stall { shard: 0 },
        }]);
        let hedged = resilient_tier(
            &m,
            &arch,
            2,
            load_config(),
            ResilienceConfig {
                plan: plan.clone(),
                chunk_deadline_us: Some(500.0),
                replication: ReplicationPolicy::Full,
                ladder: Some(LadderConfig::failover_only()),
                replica_reads: false,
            },
        )
        .serve(&reqs)?;
        let unhedged = resilient_tier(
            &m,
            &arch,
            2,
            load_config(),
            ResilienceConfig {
                plan,
                chunk_deadline_us: None,
                replication: ReplicationPolicy::Full,
                ladder: Some(LadderConfig::failover_only()),
                replica_reads: false,
            },
        )
        .serve(&reqs)?;
        assert!(hedged.hedge_fires > 0, "deadlines must fire on the stall");
        assert!(
            hedged.hedge_wins > 0,
            "the replica must beat a stalled primary"
        );
        assert!(hedged.hedge_wins <= hedged.hedge_fires);
        assert!(
            hedged.percentile_us(0.99) < unhedged.percentile_us(0.99),
            "hedging must cut the stall-bound tail: {} vs {}",
            hedged.percentile_us(0.99),
            unhedged.percentile_us(0.99)
        );
        Ok(())
    }

    #[test]
    fn ladder_rung_two_serves_partial_answers_instead_of_shedding() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(200.0).stream(&m, 48, 29);
        // No replicas and only one survivor: with the partial threshold at
        // zero every crashed-shard slice zero-pools immediately.
        let report = resilient_tier(
            &m,
            &arch,
            2,
            slo_config(),
            ResilienceConfig {
                plan: crash_window(&m),
                chunk_deadline_us: None,
                replication: ReplicationPolicy::None,
                ladder: Some(LadderConfig {
                    drop_hedge_backlog_us: 0.0,
                    partial_backlog_us: 0.0,
                    pressure: PressureSignal::Instantaneous,
                }),
                replica_reads: false,
            },
        )
        .serve(&reqs)?;
        assert!(
            report.degraded_rate() > 0.0,
            "crashed-shard chunks must be served partial"
        );
        assert!(
            report.availability() >= 0.95,
            "partial service holds availability: {}",
            report.availability()
        );
        for r in report.records.iter().filter(|r| r.degraded) {
            assert!(!r.base.is_shed(), "degraded answers are answers");
        }
        Ok(())
    }

    #[test]
    fn slowdown_and_link_faults_stretch_the_run_deterministically() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 32, 33);
        let plan = FaultPlan::scripted(vec![
            Fault {
                start_us: 500.0,
                end_us: 6_000.0,
                kind: FaultKind::Slowdown {
                    shard: 1,
                    rate: 0.25,
                },
            },
            Fault {
                start_us: 500.0,
                end_us: 6_000.0,
                kind: FaultKind::LinkDegrade { factor: 16.0 },
            },
        ]);
        let faulty = ResilienceConfig {
            plan,
            chunk_deadline_us: None,
            replication: ReplicationPolicy::None,
            ladder: Some(LadderConfig::failover_only()),
            replica_reads: false,
        };
        let healthy = resilient_tier(&m, &arch, 4, load_config(), ResilienceConfig::default())
            .serve(&reqs)?;
        let a = resilient_tier(&m, &arch, 4, load_config(), faulty.clone()).serve(&reqs)?;
        let b = resilient_tier(&m, &arch, 4, load_config(), faulty).serve(&reqs)?;
        assert_eq!(a, b, "faulty runs replay bit-for-bit");
        assert!(
            a.percentile_us(0.99) > healthy.percentile_us(0.99),
            "a throttled shard gates the tier"
        );
        assert!(
            a.mean_gather_us() > healthy.mean_gather_us(),
            "a degraded link stretches gathers"
        );
        Ok(())
    }

    proptest! {
        /// Same seed + same FaultSpec ⇒ the same fault trace and the same
        /// report, bit for bit — the determinism-replay invariant
        /// extended to faulty runs.
        #[test]
        fn seeded_fault_runs_replay_bit_for_bit(seed in 0u64..500, shards in 1usize..4) {
            let (m, arch) = setup();
            // Small batches keep the 64-case sweep fast without losing
            // event-loop coverage (faults, hedges, sheds all still fire).
            let spec = WorkloadSpec {
                size_unit: 8,
                ..WorkloadSpec::long_tail(250.0)
            };
            let reqs = spec.stream(&m, 10, seed);
            let spec = FaultSpec::mixed(1_500.0, 900.0);
            let plan_a = spec.plan(shards, 6_000.0, seed);
            let plan_b = spec.plan(shards, 6_000.0, seed);
            prop_assert_eq!(&plan_a, &plan_b, "fault trace must replay");
            let rt = resilient_tier(
                &m,
                &arch,
                shards,
                slo_config(),
                ResilienceConfig {
                    plan: plan_a,
                    chunk_deadline_us: Some(1_000.0),
                    replication: ReplicationPolicy::MirrorHottest,
                    ladder: Some(LadderConfig {
                        drop_hedge_backlog_us: 4_000.0,
                        partial_backlog_us: 6_000.0,
                        pressure: PressureSignal::Instantaneous,
                    }),
                    replica_reads: false,
                },
            );
            let a = rt.serve(&reqs);
            let b = rt.serve(&reqs);
            prop_assert!(a.is_ok() && b.is_ok(), "a faulty run must still serve");
            let (Ok(a), Ok(b)) = (a, b) else { return };
            prop_assert_eq!(
                serde_json::to_string(&a).ok(),
                serde_json::to_string(&b).ok()
            );
            prop_assert_eq!(a, b);
        }
    }

    /// In-distribution head, heavily shifted tail: the drift monitor
    /// fires partway through, exactly like the single-device retune test.
    fn drifting_stream(m: &ModelConfig) -> (ModelConfig, Vec<Request>) {
        let shifted = shift_distribution(m, 2.5, 0.0);
        let mut reqs = WorkloadSpec::long_tail(400.0).stream(m, 16, 5);
        let mut tail = WorkloadSpec::long_tail(400.0).stream(&shifted, 24, 6);
        let t0 = reqs.last().map_or(0.0, |r| r.arrival_us);
        for (k, r) in tail.iter_mut().enumerate() {
            r.arrival_us += t0;
            r.id = 16 + k as u64;
        }
        reqs.append(&mut tail);
        (shifted, reqs)
    }

    fn drift_config() -> DriftConfig {
        DriftConfig {
            window: 8,
            threshold: 0.3,
            feature_threshold: 0.5,
        }
    }

    #[test]
    fn one_shard_retune_tier_matches_single_device_retune_bit_for_bit() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let (shifted, reqs) = drifting_stream(&m);
        let config = ServeConfig {
            streams: 2,
            policy: BatchPolicy::Split { cap: 256 },
            slo_deadline_us: None,
            closed_loop: false,
            hot_shard_cap: None,
        };
        // Blind swap and full-canary must both degenerate to the
        // single-device lifecycle with one shard.
        for lifecycle in [
            LifecycleConfig::default(),
            LifecycleConfig {
                canary: Some(CanaryConfig {
                    shadow_fraction: 1.0,
                    window: 4,
                    min_win_margin: 0.0,
                    split_traffic: false,
                }),
                ..LifecycleConfig::default()
            },
        ] {
            let mut sharded_policy = ShardedRetunePolicy {
                drift: drift_config(),
                retune_latency_us: 1_000.0,
                stagger_us: 0.0,
                lifecycle: lifecycle.clone(),
                retuner: Box::new(|_: &ModelConfig, _: &[Batch]| {
                    TunedCandidate::from(
                        Box::new(TorchRecBackend::compile(&shifted)) as Box<dyn Backend>
                    )
                }),
            };
            let sharded = tier(&m, &arch, 1, config, Interconnect::nvlink())
                .serve_with_retune(&reqs, &mut sharded_policy)?;
            let backend = TorchRecBackend::compile(&m);
            let tables = TableSet::for_model(&m);
            let mut single_policy = RetunePolicy {
                drift: drift_config(),
                retune_latency_us: 1_000.0,
                lifecycle: lifecycle.clone(),
                retuner: Box::new(|_: &[Batch]| {
                    TunedCandidate::from(
                        Box::new(TorchRecBackend::compile(&shifted)) as Box<dyn Backend>
                    )
                }),
            };
            let single = ServeRuntime {
                backend: &backend,
                model: &m,
                tables: &tables,
                arch: &arch,
                config,
            }
            .serve_with_retune(&reqs, &mut single_policy)?;
            assert!(
                single.lifecycle.retunes_attempted >= 1,
                "the stream must drift"
            );
            assert_eq!(sharded.flat(), single);
        }
        Ok(())
    }

    #[test]
    fn canary_rolls_back_a_regressed_retune_and_protects_latency() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let (_shifted, reqs) = drifting_stream(&m);
        let regressed = OutcomePlan::scripted(vec![RetuneOutcome::Regression { slowdown: 4.0 }; 8]);
        let mk_policy = |lifecycle: LifecycleConfig| ShardedRetunePolicy {
            drift: drift_config(),
            retune_latency_us: 1_000.0,
            stagger_us: 0.0,
            lifecycle,
            retuner: Box::new(|sm: &ModelConfig, _: &[Batch]| {
                TunedCandidate::from(Box::new(TorchRecBackend::compile(sm)) as Box<dyn Backend>)
            }),
        };
        let plain = tier(&m, &arch, 2, load_config(), Interconnect::nvlink()).serve(&reqs)?;
        let mut blind_policy = mk_policy(LifecycleConfig {
            outcomes: regressed.clone(),
            ..LifecycleConfig::default()
        });
        let blind = tier(&m, &arch, 2, load_config(), Interconnect::nvlink())
            .serve_with_retune(&reqs, &mut blind_policy)?;
        let mut canaried_policy = mk_policy(LifecycleConfig {
            outcomes: regressed,
            canary: Some(CanaryConfig {
                shadow_fraction: 1.0,
                window: 4,
                min_win_margin: 0.0,
                split_traffic: false,
            }),
            ..LifecycleConfig::default()
        });
        let canaried = tier(&m, &arch, 2, load_config(), Interconnect::nvlink())
            .serve_with_retune(&reqs, &mut canaried_policy)?;

        assert!(
            blind.lifecycle.retunes_promoted >= 1,
            "a blind swap installs the regressed engine"
        );
        assert_eq!(
            canaried.lifecycle.retunes_promoted, 0,
            "the canary must never promote a 4x-slower candidate"
        );
        assert!(canaried.lifecycle.retunes_rolled_back >= 1);
        assert!(canaried.lifecycle.canary_shadow_chunks > 0);
        assert!(canaried.lifecycle.canary_overhead_us > 0.0);
        // Shadow runs are accounted but never submitted: request records
        // are bit-identical to a tier that never retuned at all.
        assert_eq!(canaried.records, plain.records);
        assert!(
            canaried.percentile_us(0.99) < blind.percentile_us(0.99),
            "rolling back must beat serving on the regressed engine: {} vs {}",
            canaried.percentile_us(0.99),
            blind.percentile_us(0.99)
        );
        Ok(())
    }

    #[test]
    fn staged_rollout_promotes_every_shard_in_order() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let (_shifted, reqs) = drifting_stream(&m);
        let stagger = 300.0;
        let mut policy = ShardedRetunePolicy {
            drift: drift_config(),
            retune_latency_us: 1_000.0,
            stagger_us: stagger,
            lifecycle: LifecycleConfig {
                canary: Some(CanaryConfig {
                    shadow_fraction: 1.0,
                    window: 3,
                    min_win_margin: 0.0,
                    split_traffic: false,
                }),
                ..LifecycleConfig::default()
            },
            retuner: Box::new(|sm: &ModelConfig, _: &[Batch]| {
                TunedCandidate::from(Box::new(TorchRecBackend::compile(sm)) as Box<dyn Backend>)
            }),
        };
        let report = tier(&m, &arch, 3, load_config(), Interconnect::nvlink())
            .serve_with_retune(&reqs, &mut policy)?;
        assert_eq!(report.lifecycle.retunes_promoted, 1);
        assert_eq!(report.lifecycle.engine_version, 1);
        assert_eq!(report.lifecycle.retunes_rolled_back, 0);
        let promotions: Vec<(f64, usize)> = report
            .lifecycle_trace
            .iter()
            .filter_map(|e| match e {
                LifecycleEvent::ShardPromoted { t_us, shard } => Some((*t_us, *shard)),
                _ => None,
            })
            .collect();
        let order: Vec<usize> = promotions.iter().map(|&(_, s)| s).collect();
        assert_eq!(order, vec![0, 1, 2], "shards promote in placement order");
        for pair in promotions.windows(2) {
            let gap = pair[1].0 - pair[0].0;
            assert!(
                (gap - stagger).abs() < 1e-9,
                "promotions are staggered by {stagger} µs, got {gap}"
            );
        }
        Ok(())
    }

    #[test]
    fn leaky_bucket_pressure_keeps_hedging_through_a_backlog_spike() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(400.0).stream(&m, 32, 17);
        let plan = FaultPlan::scripted(vec![Fault {
            start_us: 1_000.0,
            end_us: 10_000.0,
            kind: FaultKind::Stall { shard: 0 },
        }]);
        // 600 µs sits above the healthy lane's steady backlog (~290 µs)
        // but below the replica's hedge-driven spike (~1000 µs): only the
        // spike can trip the hedge-drop rung.
        let run = |pressure: PressureSignal| {
            resilient_tier(
                &m,
                &arch,
                2,
                load_config(),
                ResilienceConfig {
                    plan: plan.clone(),
                    chunk_deadline_us: Some(500.0),
                    replication: ReplicationPolicy::Full,
                    ladder: Some(LadderConfig {
                        drop_hedge_backlog_us: 600.0,
                        partial_backlog_us: f64::INFINITY,
                        pressure,
                    }),
                    replica_reads: false,
                },
            )
            .serve(&reqs)
        };
        let twitchy = run(PressureSignal::Instantaneous)?;
        let damped = run(PressureSignal::LeakyBucket { tau_us: 50_000.0 })?;
        assert!(
            twitchy.hedge_fires > 0,
            "the spike must not suppress hedging entirely"
        );
        assert!(
            damped.hedge_fires > twitchy.hedge_fires,
            "a leaky bucket rides through the transient spike and keeps \
             hedging: {} vs {}",
            damped.hedge_fires,
            twitchy.hedge_fires
        );
        // Hedging sustained through the stall buys tail latency.
        assert!(damped.percentile_us(0.99) <= twitchy.percentile_us(0.99));
        Ok(())
    }

    #[test]
    fn hot_shard_cap_none_and_slack_cap_are_byte_identical() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 40, 42);
        let run = |cap: Option<u32>| {
            let mut config = load_config();
            config.hot_shard_cap = cap;
            tier(&m, &arch, 2, config, Interconnect::nvlink()).serve(&reqs)
        };
        let baseline = run(None)?;
        // A cap no chunk can exceed must not perturb a single record.
        assert_eq!(baseline, run(Some(u32::MAX))?);
        assert_eq!(
            serde_json::to_string(&baseline).ok(),
            serde_json::to_string(&run(Some(u32::MAX))?).ok()
        );
        Ok(())
    }

    #[test]
    fn hot_shard_cap_zero_is_rejected_up_front() {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 4, 42);
        let mut config = load_config();
        config.hot_shard_cap = Some(0);
        let err = tier(&m, &arch, 2, config, Interconnect::nvlink()).serve(&reqs);
        assert!(matches!(err, Err(ServeError::Policy(_))), "{err:?}");
    }

    #[test]
    fn hot_shard_cap_resplits_hot_chunks_without_losing_requests() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 40, 42);
        let run = |cap: Option<u32>| {
            let mut config = load_config();
            config.policy = BatchPolicy::Unsplit; // admit whole hot batches
            config.hot_shard_cap = cap;
            tier(&m, &arch, 2, config, Interconnect::nvlink()).serve(&reqs)
        };
        let uncapped = run(None)?;
        let capped = run(Some(256))?;
        // The cap only re-splits submissions above it: every request
        // still completes, in more, narrower chunks on every lane.
        let ids = |r: &ShardedReport| {
            let mut v: Vec<u64> = r.records.iter().map(|x| x.base.id).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(&uncapped), ids(&capped));
        assert!(capped.records.iter().all(|r| !r.base.is_shed()));
        assert!(
            capped.kernel_launches > uncapped.kernel_launches,
            "{} vs {}",
            capped.kernel_launches,
            uncapped.kernel_launches
        );
        Ok(())
    }
}
