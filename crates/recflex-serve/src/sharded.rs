//! The multi-shard serving tier.
//!
//! Scales the single-device [`crate::ServeRuntime`] across `N` simulated
//! GPUs the TorchRec way: the model's features are partitioned by a
//! [`Placement`], every admitted device batch is *projected* onto each
//! shard's feature subset, and the per-shard fused kernels run
//! concurrently on independent devices — each with its own FIFO launch
//! queue and processor-sharing executor. A chunk's embedding output is
//! only usable once every shard has finished **and** the pooled rows have
//! been exchanged, so the latency model appends a ring all-gather
//! (bytes = rows × concatenated dim × 4, over a configurable
//! [`Interconnect`]) gated by the *slowest* shard. Stragglers are
//! first-class observables: every record carries the gap between the
//! fastest and slowest shard for its chunks, and the report breaks
//! latency into queue + device + gather.
//!
//! With one shard the projection is the identity, the gather is skipped
//! entirely, and the event sequence degenerates to the single-device
//! runtime's — a 1-shard tier reproduces [`crate::ServeRuntime`]
//! latencies bit-for-bit (tested in this module).
//!
//! Batch shaping (unsplit / split / dynamic coalescing) happens *before*
//! the fan-out, on whole requests: all shards always see the same sample
//! axis for a chunk, which is what keeps the all-gather well-defined.

use std::collections::HashMap;

use recflex_baselines::Backend;
use recflex_data::{Batch, ModelConfig, Placement};
use recflex_embedding::TableSet;
use recflex_sim::{GpuArch, Interconnect};

use crate::executor::DeviceExecutor;
use crate::request::Request;
use crate::runtime::{BatchPolicy, ServeConfig, ServeError};
use crate::stats::{RequestRecord, ShardLaneStats, ShardedReport, ShardedRequestRecord};

/// One shard's serving lane: the sub-model it owns, its tables and the
/// engine compiled for it.
pub struct ShardLane {
    /// The features this shard serves, as a model.
    pub model: ModelConfig,
    /// The shard's embedding tables.
    pub tables: TableSet,
    /// The engine serving this shard.
    pub backend: Box<dyn Backend>,
}

/// The sharded serving runtime: one model partitioned over `N` devices.
pub struct ShardedServeRuntime<'a> {
    /// Feature → device partition.
    pub placement: Placement,
    /// Per-device lanes, indexed by device.
    pub lanes: Vec<ShardLane>,
    /// The full model (for gather sizing).
    pub model: &'a ModelConfig,
    /// The simulated device type (same for every shard).
    pub arch: &'a GpuArch,
    /// Runtime configuration, shared across shards.
    pub config: ServeConfig,
    /// The link pooled outputs are gathered over.
    pub interconnect: Interconnect,
}

impl<'a> ShardedServeRuntime<'a> {
    /// Build the tier: partition `model` by `placement` and compile one
    /// lane per device with `make_backend`.
    pub fn build(
        model: &'a ModelConfig,
        arch: &'a GpuArch,
        placement: Placement,
        config: ServeConfig,
        interconnect: Interconnect,
        make_backend: impl Fn(&ModelConfig) -> Box<dyn Backend>,
    ) -> Self {
        assert_eq!(placement.device_of.len(), model.features.len());
        let lanes = (0..placement.num_devices)
            .map(|dev| {
                let sub_model = placement.sub_model(model, dev);
                let tables = TableSet::for_model(&sub_model);
                let backend = make_backend(&sub_model);
                ShardLane {
                    model: sub_model,
                    tables,
                    backend,
                }
            })
            .collect();
        ShardedServeRuntime {
            placement,
            lanes,
            model,
            arch,
            config,
            interconnect,
        }
    }

    /// Serve a request stream across all shards.
    pub fn serve(&self, requests: &[Request]) -> Result<ShardedReport, ServeError> {
        match self.config.policy {
            BatchPolicy::Split { cap: 0 } => {
                return Err(ServeError::Policy("split cap must be at least 1"))
            }
            BatchPolicy::Dynamic {
                max_batch,
                max_wait_us,
            } => {
                if max_batch == 0 {
                    return Err(ServeError::Policy("dynamic max_batch must be at least 1"));
                }
                if !max_wait_us.is_finite() || max_wait_us < 0.0 {
                    return Err(ServeError::Policy(
                        "dynamic max_wait_us must be finite and >= 0",
                    ));
                }
            }
            _ => {}
        }

        let n = requests.len();
        let num_shards = self.placement.num_devices;
        let mut st = ShardedRunState {
            executors: (0..num_shards)
                .map(|_| DeviceExecutor::new(self.config.streams))
                .collect(),
            lane_stats: vec![ShardLaneStats::default(); num_shards],
            records: vec![None; n],
            remaining_chunks: vec![0u32; n],
            first_start_us: vec![f64::INFINITY; n],
            device_done_us: vec![0.0f64; n],
            last_done_us: vec![0.0f64; n],
            straggler_us: vec![0.0f64; n],
            arrival_eff_us: requests.iter().map(|r| r.arrival_us).collect(),
            chunks: HashMap::new(),
            pending_gathers: Vec::new(),
            next_chunk: 0,
            launches: 0,
            buffer: Vec::new(),
            buffer_size: 0,
            buffer_oldest_us: f64::INFINITY,
        };

        let mut cursor = 0usize;
        let mut now = 0.0f64;

        loop {
            // Candidate events, probed in tie-break priority order:
            // completion, gather, arrival, flush.
            let mut next: Option<(f64, EventKind)> = None;
            let mut consider = |t: Option<f64>, kind: EventKind| {
                if let Some(t) = t {
                    if next.is_none_or(|(bt, _)| t < bt) {
                        next = Some((t, kind));
                    }
                }
            };
            let completion_t = st
                .executors
                .iter()
                .filter_map(|e| e.next_completion_us())
                .fold(None, |m: Option<f64>, t| Some(m.map_or(t, |m| m.min(t))));
            consider(completion_t, EventKind::Completion);
            let gather_t = st
                .pending_gathers
                .iter()
                .map(|&(t, _)| t)
                .fold(None, |m: Option<f64>, t| Some(m.map_or(t, |m| m.min(t))));
            consider(gather_t, EventKind::Gather);
            let arrival_t = if cursor < n {
                if self.config.closed_loop {
                    // Admit only when the previous request fully drained,
                    // gathers included.
                    (st.all_idle() && st.buffer.is_empty() && st.pending_gathers.is_empty())
                        .then_some(now)
                } else {
                    Some(requests[cursor].arrival_us.max(now))
                }
            } else {
                None
            };
            consider(arrival_t, EventKind::Arrival);
            let flush_t = match self.config.policy {
                BatchPolicy::Dynamic { max_wait_us, .. } if !st.buffer.is_empty() => {
                    Some((st.buffer_oldest_us + max_wait_us).max(now))
                }
                _ => None,
            };
            consider(flush_t, EventKind::Flush);

            let Some((t, kind)) = next else { break };
            now = t;

            match kind {
                EventKind::Completion => {
                    for ex in &mut st.executors {
                        ex.advance_to(now);
                    }
                    st.note_starts();
                    st.collect_completions(self, requests);
                    // Work-conserving: idle devices drain the batcher.
                    if st.all_idle() && !st.buffer.is_empty() {
                        st.flush_buffer(now, self, requests)?;
                    }
                }
                EventKind::Gather => {
                    st.retire_gathers(now, requests);
                }
                EventKind::Arrival => {
                    st.admit(cursor, now, self, requests)?;
                    cursor += 1;
                }
                EventKind::Flush => {
                    st.flush_buffer(now, self, requests)?;
                }
            }
        }

        debug_assert!(st.records.iter().all(Option::is_some));
        Ok(ShardedReport {
            records: st.records.into_iter().flatten().collect(),
            per_shard: st.lane_stats,
            kernel_launches: st.launches,
            makespan_us: now,
        })
    }
}

/// Which event fires next; declaration order is tie-break priority.
#[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy, Debug)]
enum EventKind {
    Completion,
    Gather,
    Arrival,
    Flush,
}

/// In-flight bookkeeping for one device chunk fanned out over all shards.
struct ChunkState {
    owners: Vec<usize>,
    /// Shards whose kernel has not started yet.
    pending_starts: usize,
    /// Latest per-shard kernel start seen so far. A chunk only counts as
    /// "on the device" once its *gating* (last-starting) lane picked it
    /// up; until then it is queue time, exactly as the single-device
    /// runtime counts its one lane's launch-queue wait.
    start_max_us: f64,
    /// Shards whose kernel has not completed yet.
    pending_shards: usize,
    /// Earliest / latest per-shard completion seen so far.
    done_min_us: f64,
    done_max_us: f64,
    /// Samples in the chunk (sizes the all-gather).
    rows: u32,
}

struct ShardedRunState {
    executors: Vec<DeviceExecutor>,
    lane_stats: Vec<ShardLaneStats>,
    records: Vec<Option<ShardedRequestRecord>>,
    remaining_chunks: Vec<u32>,
    first_start_us: Vec<f64>,
    /// Last per-shard kernel completion over the request's chunks.
    device_done_us: Vec<f64>,
    /// Last gather completion over the request's chunks.
    last_done_us: Vec<f64>,
    /// Worst chunk straggler gap over the request's chunks.
    straggler_us: Vec<f64>,
    arrival_eff_us: Vec<f64>,
    chunks: HashMap<u64, ChunkState>,
    /// Gathers in flight: (completion timestamp, chunk id).
    pending_gathers: Vec<(f64, u64)>,
    next_chunk: u64,
    launches: u64,
    /// Request indices waiting in the dynamic batcher.
    buffer: Vec<usize>,
    buffer_size: u32,
    buffer_oldest_us: f64,
}

impl ShardedRunState {
    fn all_idle(&self) -> bool {
        self.executors.iter().all(|e| e.is_idle())
    }

    fn max_backlog_us(&self) -> f64 {
        self.executors
            .iter()
            .map(|e| e.backlog_us())
            .fold(0.0, f64::max)
    }

    fn admit(
        &mut self,
        ri: usize,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        let req = &requests[ri];
        self.arrival_eff_us[ri] = if rt.config.closed_loop {
            now
        } else {
            req.arrival_us
        };

        // SLO admission: the slowest shard gates a chunk, so the tier's
        // effective backlog is the worst per-shard backlog.
        if let Some(deadline) = rt.config.slo_deadline_us {
            if self.max_backlog_us() > deadline {
                self.records[ri] = Some(ShardedRequestRecord {
                    base: RequestRecord {
                        id: req.id,
                        batch_size: req.batch.batch_size,
                        arrival_us: self.arrival_eff_us[ri],
                        queue_us: 0.0,
                        service_us: 0.0,
                        done_us: self.arrival_eff_us[ri],
                        shed: true,
                    },
                    device_us: 0.0,
                    gather_us: 0.0,
                    straggler_us: 0.0,
                });
                return Ok(());
            }
        }

        match rt.config.policy {
            BatchPolicy::Unsplit => {
                self.submit_chunk(req.batch.clone(), vec![ri], now, rt, requests)?;
            }
            BatchPolicy::Split { cap } => {
                let chunks = req
                    .batch
                    .split(cap)
                    .map_err(|_| ServeError::Policy("split cap must be at least 1"))?;
                if chunks.is_empty() {
                    self.finalize_empty(ri, now, requests);
                } else {
                    for chunk in chunks {
                        self.submit_chunk(chunk, vec![ri], now, rt, requests)?;
                    }
                }
            }
            BatchPolicy::Dynamic { max_batch, .. } => {
                if req.batch.batch_size == 0 {
                    self.finalize_empty(ri, now, requests);
                } else if req.batch.batch_size >= max_batch {
                    // Oversized: flush waiting small requests first so
                    // device order stays FIFO, then split the big one.
                    self.flush_buffer(now, rt, requests)?;
                    let chunks = req
                        .batch
                        .split(max_batch)
                        .map_err(|_| ServeError::Policy("dynamic max_batch must be at least 1"))?;
                    for chunk in chunks {
                        self.submit_chunk(chunk, vec![ri], now, rt, requests)?;
                    }
                } else {
                    if self.buffer_size + req.batch.batch_size > max_batch {
                        self.flush_buffer(now, rt, requests)?;
                    }
                    self.buffer.push(ri);
                    self.buffer_size += req.batch.batch_size;
                    self.buffer_oldest_us = self.buffer_oldest_us.min(self.arrival_eff_us[ri]);
                    if self.buffer_size == max_batch || self.all_idle() {
                        self.flush_buffer(now, rt, requests)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn flush_buffer(
        &mut self,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let owners = std::mem::take(&mut self.buffer);
        self.buffer_size = 0;
        self.buffer_oldest_us = f64::INFINITY;
        let parts: Vec<Batch> = owners
            .iter()
            .map(|&ri| requests[ri].batch.clone())
            .collect();
        let merged = Batch::merge(&parts);
        self.submit_chunk(merged, owners, now, rt, requests)
    }

    /// Fan one device chunk out over every shard.
    fn submit_chunk(
        &mut self,
        batch: Batch,
        owners: Vec<usize>,
        now: f64,
        rt: &ShardedServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        let chunk_id = self.next_chunk;
        self.next_chunk += 1;
        for &ri in &owners {
            self.remaining_chunks[ri] += 1;
        }
        self.chunks.insert(
            chunk_id,
            ChunkState {
                owners,
                pending_starts: rt.lanes.len(),
                start_max_us: 0.0,
                pending_shards: rt.lanes.len(),
                done_min_us: f64::INFINITY,
                done_max_us: 0.0,
                rows: batch.batch_size,
            },
        );
        for (dev, lane) in rt.lanes.iter().enumerate() {
            let sub_batch = rt.placement.project_batch(&batch, dev);
            let run = lane
                .backend
                .run(&lane.model, &lane.tables, &sub_batch, rt.arch)?;
            self.launches += u64::from(run.kernel_launches);
            let stats = &mut self.lane_stats[dev];
            stats.jobs += 1;
            stats.device_us += run.latency_us;
            self.executors[dev].submit(now, chunk_id, run.latency_us);
            stats.max_backlog_us = stats.max_backlog_us.max(self.executors[dev].backlog_us());
            stats.max_queue_depth = stats.max_queue_depth.max(self.executors[dev].depth());
        }
        self.note_starts();
        // Zero-cost shard kernels retire inside `submit`; collect them so
        // their owners don't wait for a completion event that may never
        // have a distinct timestamp.
        self.collect_completions(rt, requests);
        Ok(())
    }

    /// Drain per-shard completions, resolve finished chunks, and either
    /// finalize them (1 shard / free gather) or start their all-gather.
    fn collect_completions(&mut self, rt: &ShardedServeRuntime<'_>, requests: &[Request]) {
        let num_shards = rt.placement.num_devices;
        for dev in 0..self.executors.len() {
            for (t_done, chunk_id) in self.executors[dev].drain_completed() {
                let chunk = self
                    .chunks
                    .get_mut(&chunk_id)
                    .expect("completion for unknown chunk");
                chunk.pending_shards -= 1;
                chunk.done_min_us = chunk.done_min_us.min(t_done);
                chunk.done_max_us = chunk.done_max_us.max(t_done);
                if chunk.pending_shards > 0 {
                    continue;
                }
                let chunk = self.chunks.remove(&chunk_id).expect("chunk state");
                let out_bytes = rt.model.concat_dim() as u64 * chunk.rows as u64 * 4;
                let gather_us = rt.interconnect.all_gather_us(out_bytes, num_shards);
                let straggler = chunk.done_max_us - chunk.done_min_us;
                for &ri in &chunk.owners {
                    self.device_done_us[ri] = self.device_done_us[ri].max(chunk.done_max_us);
                    self.straggler_us[ri] = self.straggler_us[ri].max(straggler);
                }
                if gather_us > 0.0 {
                    self.pending_gathers
                        .push((chunk.done_max_us + gather_us, chunk_id));
                    self.chunks.insert(chunk_id, chunk);
                } else {
                    // One shard (or an ideal link): the chunk is done the
                    // moment the device finishes — exactly the
                    // single-device runtime's event sequence.
                    self.retire_chunk(&chunk, chunk.done_max_us, requests);
                }
            }
        }
    }

    /// Retire every gather due at `now` (submission order on ties).
    fn retire_gathers(&mut self, now: f64, requests: &[Request]) {
        let mut due: Vec<(f64, u64)> = Vec::new();
        self.pending_gathers.retain(|&(t, id)| {
            if t <= now {
                due.push((t, id));
                false
            } else {
                true
            }
        });
        due.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (t, chunk_id) in due {
            let chunk = self.chunks.remove(&chunk_id).expect("gather chunk state");
            self.retire_chunk(&chunk, t, requests);
        }
    }

    fn retire_chunk(&mut self, chunk: &ChunkState, done_us: f64, requests: &[Request]) {
        for &ri in &chunk.owners {
            self.remaining_chunks[ri] -= 1;
            self.last_done_us[ri] = self.last_done_us[ri].max(done_us);
            if self.remaining_chunks[ri] == 0 {
                self.finalize(ri, requests);
            }
        }
    }

    /// Fold freshly drained kernel-start events into per-request first
    /// *gating* start times: a chunk starts when its last lane picks it
    /// up, and a request starts at its earliest chunk start.
    fn note_starts(&mut self) {
        for dev in 0..self.executors.len() {
            for (t_start, chunk_id) in self.executors[dev].drain_started() {
                if let Some(chunk) = self.chunks.get_mut(&chunk_id) {
                    chunk.pending_starts -= 1;
                    chunk.start_max_us = chunk.start_max_us.max(t_start);
                    if chunk.pending_starts == 0 {
                        let gating = chunk.start_max_us;
                        let owners = chunk.owners.clone();
                        for ri in owners {
                            self.first_start_us[ri] = self.first_start_us[ri].min(gating);
                        }
                    }
                }
            }
        }
    }

    fn finalize(&mut self, ri: usize, requests: &[Request]) {
        let arrival = self.arrival_eff_us[ri];
        let first = self.first_start_us[ri];
        let done = self.last_done_us[ri];
        let device_done = self.device_done_us[ri];
        self.records[ri] = Some(ShardedRequestRecord {
            base: RequestRecord {
                id: requests[ri].id,
                batch_size: requests[ri].batch.batch_size,
                arrival_us: arrival,
                queue_us: first - arrival,
                service_us: done - first,
                done_us: done,
                shed: false,
            },
            device_us: device_done - first,
            gather_us: done - device_done,
            straggler_us: self.straggler_us[ri],
        });
    }

    fn finalize_empty(&mut self, ri: usize, now: f64, requests: &[Request]) {
        self.records[ri] = Some(ShardedRequestRecord {
            base: RequestRecord {
                id: requests[ri].id,
                batch_size: 0,
                arrival_us: self.arrival_eff_us[ri],
                queue_us: 0.0,
                service_us: 0.0,
                done_us: now,
                shed: false,
            },
            device_us: 0.0,
            gather_us: 0.0,
            straggler_us: 0.0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::WorkloadSpec;
    use crate::runtime::ServeRuntime;
    use recflex_baselines::TorchRecBackend;
    use recflex_data::ModelPreset;

    fn setup() -> (ModelConfig, GpuArch) {
        (ModelPreset::A.scaled(0.01), GpuArch::v100())
    }

    fn tier<'a>(
        model: &'a ModelConfig,
        arch: &'a GpuArch,
        shards: usize,
        config: ServeConfig,
        interconnect: Interconnect,
    ) -> ShardedServeRuntime<'a> {
        ShardedServeRuntime::build(
            model,
            arch,
            Placement::balance(model, shards),
            config,
            interconnect,
            |m| Box::new(TorchRecBackend::compile(m)),
        )
    }

    fn load_config() -> ServeConfig {
        ServeConfig {
            streams: 4,
            policy: BatchPolicy::Split { cap: 256 },
            slo_deadline_us: None,
            closed_loop: false,
        }
    }

    #[test]
    fn one_shard_reproduces_single_device_latencies_bit_for_bit() {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 40, 42);
        for policy in [
            BatchPolicy::Unsplit,
            BatchPolicy::Split { cap: 128 },
            BatchPolicy::Dynamic {
                max_batch: 256,
                max_wait_us: 200.0,
            },
        ] {
            let config = ServeConfig {
                streams: 4,
                policy,
                slo_deadline_us: Some(20_000.0),
                closed_loop: false,
            };
            let sharded = tier(&m, &arch, 1, config, Interconnect::nvlink())
                .serve(&reqs)
                .unwrap();
            let backend = TorchRecBackend::compile(&m);
            let tables = TableSet::for_model(&m);
            let single = ServeRuntime {
                backend: &backend,
                model: &m,
                tables: &tables,
                arch: &arch,
                config,
            }
            .serve(&reqs)
            .unwrap();
            assert_eq!(sharded.flat(), single, "policy {policy:?}");
            assert!(sharded.records.iter().all(|r| r.gather_us == 0.0));
            assert!(sharded.records.iter().all(|r| r.straggler_us == 0.0));
        }
    }

    #[test]
    fn replaying_a_seed_reproduces_the_report_bit_for_bit() {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(250.0).stream(&m, 48, 7);
        let rt = tier(&m, &arch, 4, load_config(), Interconnect::nvlink());
        let a = rt.serve(&reqs).unwrap();
        let b = rt.serve(&reqs).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.records.len(), 48);
        assert_eq!(a.per_shard.len(), 4);
    }

    #[test]
    fn more_shards_cut_device_time_under_load() {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(150.0).stream(&m, 48, 9);
        let p50 = |shards: usize| {
            tier(&m, &arch, shards, load_config(), Interconnect::nvlink())
                .serve(&reqs)
                .unwrap()
                .percentile_device_us(0.5)
        };
        let one = p50(1);
        let two = p50(2);
        let four = p50(4);
        assert!(two <= one, "2 shards {two} vs 1 shard {one}");
        assert!(four <= two, "4 shards {four} vs 2 shards {two}");
    }

    #[test]
    fn gather_and_straggler_terms_appear_with_multiple_shards() {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(400.0).stream(&m, 24, 3);
        let report = tier(&m, &arch, 4, load_config(), Interconnect::nvlink())
            .serve(&reqs)
            .unwrap();
        assert!(report.mean_gather_us() > 0.0, "gather must be accounted");
        assert!(
            report.mean_straggler_us() > 0.0,
            "heterogeneous shards must straggle"
        );
        // The breakdown is additive on the critical path.
        for r in report.completed() {
            let sum = r.base.queue_us + r.device_us + r.gather_us;
            assert!(
                (r.base.latency_us() - sum).abs() < 1e-6,
                "queue {} + device {} + gather {} != latency {}",
                r.base.queue_us,
                r.device_us,
                r.gather_us,
                r.base.latency_us()
            );
        }
    }

    #[test]
    fn slower_interconnect_raises_tail_latency() {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 32, 5);
        let p99 = |link: Interconnect| {
            tier(&m, &arch, 4, load_config(), link)
                .serve(&reqs)
                .unwrap()
                .percentile_us(0.99)
        };
        assert!(p99(Interconnect::pcie()) > p99(Interconnect::nvlink()));
        assert!(p99(Interconnect::nvlink()) > p99(Interconnect::ideal()));
    }

    #[test]
    fn per_shard_stats_cover_every_chunk() {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 24, 13);
        let report = tier(&m, &arch, 3, load_config(), Interconnect::nvlink())
            .serve(&reqs)
            .unwrap();
        let jobs: Vec<u64> = report.per_shard.iter().map(|s| s.jobs).collect();
        // Every chunk fans out to every shard.
        assert!(jobs.iter().all(|&j| j == jobs[0] && j > 0));
        assert!(report.per_shard.iter().all(|s| s.device_us > 0.0));
        assert!(report.per_shard.iter().all(|s| s.max_queue_depth >= 1));
    }

    #[test]
    fn slo_shedding_works_in_the_sharded_tier() {
        let (m, arch) = setup();
        let reqs: Vec<Request> = (0..40)
            .map(|i| Request {
                id: i,
                arrival_us: i as f64,
                batch: Batch::generate(&m, 512, 3000 + i),
            })
            .collect();
        let config = ServeConfig {
            streams: 2,
            policy: BatchPolicy::Split { cap: 128 },
            slo_deadline_us: Some(2_000.0),
            closed_loop: false,
        };
        let report = tier(&m, &arch, 2, config, Interconnect::nvlink())
            .serve(&reqs)
            .unwrap();
        assert!(report.shed_rate() > 0.0, "overload must shed");
        for r in report.records.iter().filter(|r| r.base.shed) {
            assert_eq!(r.base.done_us, r.base.arrival_us);
            assert_eq!(r.device_us, 0.0);
        }
    }

    #[test]
    fn zero_split_cap_is_a_policy_error() {
        let (m, arch) = setup();
        let config = ServeConfig {
            streams: 1,
            policy: BatchPolicy::Split { cap: 0 },
            slo_deadline_us: None,
            closed_loop: false,
        };
        let rt = tier(&m, &arch, 2, config, Interconnect::nvlink());
        let reqs = WorkloadSpec::long_tail(100.0).stream(&m, 2, 1);
        assert!(matches!(rt.serve(&reqs), Err(ServeError::Policy(_))));
    }
}
