//! # recflex-serve — a deterministic online-serving runtime
//!
//! The paper evaluates RecFlex inside an online-serving context
//! (Section VI-D): concurrent long-tail requests, industrial batch
//! splitting, one CUDA stream per in-flight request. This crate builds
//! that serving layer as a discrete-event simulation over any
//! [`recflex_baselines::Backend`]:
//!
//! * [`WorkloadSpec`] / [`Request`] — seeded Poisson request streams
//!   with heavy-tailed batch sizes drawn from the same
//!   [`recflex_data::PoolingDist`] family as the data layer,
//! * [`BatchPolicy`] — forward unsplit (DeepRecSys-style), split at a
//!   cap (industrial practice), or dynamic batching that coalesces
//!   small requests via [`recflex_data::Batch::merge`] and splits
//!   oversized ones,
//! * [`DeviceExecutor`] — a deterministic processor-sharing model of a
//!   multi-stream device time-sharing one GPU,
//! * SLO-aware admission control — requests that cannot meet the
//!   deadline are shed at arrival ([`ServeConfig::slo_deadline_us`]),
//! * [`DriftMonitor`] / [`RetunePolicy`] — distribution-drift detection
//!   on live traffic triggering a *background* retune whose engine is
//!   hot-swapped in at a later simulated timestamp,
//! * [`LifecycleMachine`] ([`LifecycleConfig`]) — the schedule-lifecycle
//!   state machine supervising that swap: seeded retune outcomes
//!   (success / compile-fail / stall / regression via [`OutcomePlan`] /
//!   [`OutcomeSpec`]), canaried promotion with shadow execution and
//!   rollback ([`CanaryConfig`]), bounded retries with exponential
//!   backoff and post-episode cooldown ([`RetryPolicy`]), staged
//!   per-shard rollout in the sharded tier — all replayable, with
//!   counters and a transition trace in the reports,
//! * [`ServeReport`] — per-request latency breakdown (batching wait vs
//!   device time) with nearest-rank percentiles and shed rate,
//! * [`ShardedServeRuntime`] — the multi-GPU tier: a
//!   [`recflex_data::Placement`] partitions the model's features over `N`
//!   per-shard lanes (each with its own queue and processor-sharing
//!   executor), and every chunk's latency appends a ring all-gather of
//!   the pooled outputs gated by the slowest shard
//!   ([`ShardedReport`] breaks latency into queue + device + gather and
//!   reports straggler gaps and per-shard lane stats),
//! * [`FaultPlan`] / [`FaultSpec`] — deterministic fault injection
//!   (per-shard slowdown, stall, crash; interconnect degradation) with
//!   the response side in [`ResilienceConfig`]: per-chunk deadlines with
//!   hedged re-execution on replica lanes ([`ReplicationPolicy`]), crash
//!   failover onto survivors, and a graceful-degradation ladder
//!   ([`LadderConfig`]) that serves partial (zero-pooled) embeddings
//!   under sustained pressure instead of shedding,
//! * [`FleetWorkload`] / [`FleetRuntime`] — the fleet tier: several
//!   model scenarios with seeded diurnal and flash-crowd traffic shaping
//!   ([`TrafficShape`]) merged into one deterministic arrival trace and
//!   served over a pool of heterogeneous device classes
//!   ([`DeviceClass`]), with per-model SLO deadlines, DeepRecSys-style
//!   batch-size-aware admission gates ([`QueryGate`]), and a fleet-wide
//!   SLO-attainment roll-up ([`FleetReport`]),
//! * [`FleetFaultPlan`] / [`FleetChaosConfig`] — fleet-scale chaos:
//!   correlated whole-class outage/brownout windows, a health-monitored
//!   drain-and-migrate elasticity controller that re-places an
//!   unhealthy member onto the best surviving class
//!   ([`ElasticityConfig`]), and a fleet brownout ladder
//!   ([`FleetBrownoutConfig`]) that tightens gates, sheds low-priority
//!   scenarios, and answers outage-stranded traffic with degraded edge
//!   records,
//! * [`PipelineRuntime`] ([`PipelineSpec`]) — deadline-budgeted
//!   multi-stage cascades (retrieval → filtering → ranking), each stage
//!   its own sharded tier with a share of the end-to-end SLO threaded
//!   through the request path as a [`DeadlineBudget`]; a [`StagePolicy`]
//!   decides deterministically whether a late/faulted stage retries
//!   under a token-bucket [`RetryBudget`] (degrading candidates along a
//!   ladder), or trips the per-stage [`CircuitBreaker`] and answers from
//!   the stage fallback, flagged in a per-stage `degraded` mask instead
//!   of shedding.
//!
//! Simulated time is the only clock; ties resolve in a fixed priority.
//! A run is a pure function of `(config, stream, backend, fault plan)`,
//! so replaying a seed reproduces the report bit-for-bit — the property
//! every test here leans on. An empty fault plan takes the exact same
//! arithmetic path as a runtime without fault injection at all.

pub mod drift;
pub mod elastic;
pub mod executor;
pub mod faults;
pub mod fleet;
pub mod lifecycle;
pub mod pipeline;
pub mod request;
pub mod runtime;
pub mod sharded;
pub mod stats;
pub mod workload;

pub use drift::{
    expected_lookups_per_sample, expected_lookups_per_sample_per_feature, DriftConfig, DriftMonitor,
};
pub use elastic::{
    ElasticityConfig, FleetBrownoutConfig, FleetChaosConfig, FleetChaosStats, HealthPolicy,
    MigrationRecord, ResidualClassStats,
};
pub use executor::{DeviceExecutor, JobId};
pub use faults::{
    ClassFaultKind, ClassFaultWindow, Fault, FaultKind, FaultPlan, FaultSpec, FleetFaultPlan,
    FleetFaultSpec, LadderConfig, PipelineFaultSpec, PressureSignal, ReplicationPolicy,
    ResilienceConfig, StageFault,
};
pub use fleet::{
    DeviceClass, DeviceClassStats, FleetMember, FleetModelOutcome, FleetReport, FleetRuntime,
    QueryGate,
};
pub use lifecycle::{
    CanaryConfig, EngineTuning, FailReason, LifecycleConfig, LifecycleEvent, LifecycleMachine,
    LifecycleStats, OutcomePlan, OutcomeSpec, RegressedBackend, RetryPolicy, RetuneOutcome,
    StagedSchedule,
};
pub use pipeline::{
    BreakerConfig, BudgetedPolicy, CircuitBreaker, DeadlineBudget, PipelineOutcome, PipelineRecord,
    PipelineRuntime, PipelineSpec, RetryBudget, RetryBudgetConfig, StageKind, StagePolicy,
    StageSpec,
};
pub use request::{Request, WorkloadSpec};
pub use runtime::{
    BatchPolicy, RetunePolicy, ServeConfig, ServeError, ServeRuntime, TunedCandidate,
};
pub use sharded::{ShardLane, ShardedRetunePolicy, ShardedServeRuntime};
pub use stats::{
    RequestRecord, ServeReport, ShardLaneStats, ShardedReport, ShardedRequestRecord, ShedReason,
};
pub use workload::{
    DiurnalCurve, FlashCrowd, FleetArrival, FleetWorkload, ScenarioSpec, TrafficShape,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    use proptest::prelude::*;
    use recflex_baselines::{Backend, BackendError, BackendRun, TorchRecBackend};
    use recflex_data::{shift_distribution, Batch, ModelConfig, ModelPreset};
    use recflex_embedding::TableSet;
    use recflex_sim::GpuArch;

    fn setup() -> (ModelConfig, TableSet, GpuArch) {
        let m = ModelPreset::A.scaled(0.01);
        let t = TableSet::for_model(&m);
        (m, t, GpuArch::v100())
    }

    fn runtime<'a>(
        backend: &'a dyn Backend,
        m: &'a ModelConfig,
        t: &'a TableSet,
        arch: &'a GpuArch,
        config: ServeConfig,
    ) -> ServeRuntime<'a> {
        ServeRuntime {
            backend,
            model: m,
            tables: t,
            arch,
            config,
        }
    }

    #[test]
    fn replaying_a_seed_reproduces_the_report_bit_for_bit() {
        let (m, t, arch) = setup();
        let backend = TorchRecBackend::compile(&m);
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 48, 42);
        let config = ServeConfig {
            streams: 4,
            policy: BatchPolicy::Dynamic {
                max_batch: 256,
                max_wait_us: 200.0,
            },
            slo_deadline_us: Some(20_000.0),
            closed_loop: false,
            hot_shard_cap: None,
        };
        let rt = runtime(&backend, &m, &t, &arch, config);
        let a = rt.serve(&reqs).unwrap();
        let b = rt.serve(&reqs).unwrap();
        assert_eq!(a, b, "same seed, same config => identical report");
        assert_eq!(a.records.len(), 48);
    }

    #[test]
    fn all_policies_complete_every_request_without_slo() {
        let (m, t, arch) = setup();
        let backend = TorchRecBackend::compile(&m);
        let reqs = WorkloadSpec::long_tail(500.0).stream(&m, 24, 7);
        for policy in [
            BatchPolicy::Unsplit,
            BatchPolicy::Split { cap: 128 },
            BatchPolicy::Dynamic {
                max_batch: 256,
                max_wait_us: 150.0,
            },
        ] {
            let rt = runtime(
                &backend,
                &m,
                &t,
                &arch,
                ServeConfig {
                    streams: 2,
                    policy,
                    slo_deadline_us: None,
                    closed_loop: false,
                    hot_shard_cap: None,
                },
            );
            let report = rt.serve(&reqs).unwrap();
            assert_eq!(report.records.len(), 24);
            assert_eq!(report.shed_rate(), 0.0);
            assert!(report.records.iter().all(|r| r.done_us >= r.arrival_us));
            assert!(report.makespan_us > 0.0);
        }
    }

    #[test]
    fn dynamic_batching_coalesces_under_load() {
        let (m, t, arch) = setup();
        let backend = TorchRecBackend::compile(&m);
        // A dense burst of small requests: dynamic batching should need
        // strictly fewer device launches than one-launch-per-request.
        let reqs: Vec<Request> = (0..32)
            .map(|i| Request {
                id: i,
                arrival_us: i as f64 * 5.0,
                batch: Batch::generate(&m, 16, 1000 + i),
            })
            .collect();
        let unsplit = runtime(
            &backend,
            &m,
            &t,
            &arch,
            ServeConfig {
                streams: 1,
                policy: BatchPolicy::Unsplit,
                slo_deadline_us: None,
                closed_loop: false,
                hot_shard_cap: None,
            },
        )
        .serve(&reqs)
        .unwrap();
        let dynamic = runtime(
            &backend,
            &m,
            &t,
            &arch,
            ServeConfig {
                streams: 1,
                policy: BatchPolicy::Dynamic {
                    max_batch: 128,
                    max_wait_us: 500.0,
                },
                slo_deadline_us: None,
                closed_loop: false,
                hot_shard_cap: None,
            },
        )
        .serve(&reqs)
        .unwrap();
        assert!(
            dynamic.kernel_launches < unsplit.kernel_launches,
            "coalescing must reduce launches: dynamic {} vs unsplit {}",
            dynamic.kernel_launches,
            unsplit.kernel_launches
        );
        assert_eq!(dynamic.shed_rate(), 0.0);
    }

    #[test]
    fn packed_dynamic_batching_fills_batches_tighter() {
        let (m, t, arch) = setup();
        let backend = TorchRecBackend::compile(&m);
        // 60-sample requests against a 100-sample target: plain Dynamic
        // flushes at 60 (the next request would overflow), packed splits
        // the straddler so every coalesced batch is exactly 100 until
        // the tail — strictly fewer launches on a busy device.
        let reqs: Vec<Request> = (0..10)
            .map(|i| Request {
                id: i,
                arrival_us: i as f64 * 5.0,
                batch: Batch::generate(&m, 60, 4000 + i),
            })
            .collect();
        let serve = |policy| {
            runtime(
                &backend,
                &m,
                &t,
                &arch,
                ServeConfig {
                    streams: 1,
                    policy,
                    slo_deadline_us: None,
                    closed_loop: false,
                    hot_shard_cap: None,
                },
            )
            .serve(&reqs)
            .unwrap()
        };
        let loose = serve(BatchPolicy::Dynamic {
            max_batch: 100,
            max_wait_us: 500.0,
        });
        let packed = serve(BatchPolicy::DynamicPacked {
            max_batch: 100,
            max_wait_us: 500.0,
        });
        assert!(
            packed.kernel_launches < loose.kernel_launches,
            "packing must reduce launches: packed {} vs dynamic {}",
            packed.kernel_launches,
            loose.kernel_launches
        );
        assert_eq!(packed.records.len(), 10);
        assert_eq!(packed.shed_rate(), 0.0);
        assert!(packed.records.iter().all(|r| r.done_us >= r.arrival_us));
        // A request split across two coalesced batches completes only
        // when its second half does, so done_us is still monotone with
        // full batch accounting.
        let b = serve(BatchPolicy::DynamicPacked {
            max_batch: 100,
            max_wait_us: 500.0,
        });
        assert_eq!(packed, b, "packed runs replay bit-for-bit");
    }

    #[test]
    fn packed_request_straddling_two_batches_completes_once() {
        let (m, t, arch) = setup();
        let backend = TorchRecBackend::compile(&m);
        // Request 1 (70 samples) lands in a buffer already holding 50 of
        // request 0: its head tops batch one off at 100, its 20-sample
        // tail waits for batch two. Both requests must finish exactly
        // once, with request 1 gated on the second launch.
        let reqs = vec![
            Request {
                id: 0,
                arrival_us: 0.0,
                batch: Batch::generate(&m, 50, 11),
            },
            Request {
                id: 1,
                arrival_us: 1.0,
                batch: Batch::generate(&m, 70, 12),
            },
        ];
        // Park the device so the batcher actually buffers: a huge
        // request arriving first keeps the single stream busy.
        let mut all = vec![Request {
            id: 99,
            arrival_us: 0.0,
            batch: Batch::generate(&m, 2048, 13),
        }];
        let mut shifted: Vec<Request> = reqs
            .into_iter()
            .map(|mut r| {
                r.id += 100;
                r.arrival_us += 2.0;
                r
            })
            .collect();
        all.append(&mut shifted);
        let report = runtime(
            &backend,
            &m,
            &t,
            &arch,
            ServeConfig {
                streams: 1,
                policy: BatchPolicy::DynamicPacked {
                    max_batch: 100,
                    max_wait_us: 10_000.0,
                },
                slo_deadline_us: None,
                closed_loop: false,
                hot_shard_cap: None,
            },
        )
        .serve(&all)
        .unwrap();
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.shed_rate(), 0.0);
        let r0 = &report.records[1];
        let r1 = &report.records[2];
        assert_eq!(r0.batch_size, 50);
        assert_eq!(r1.batch_size, 70);
        // The straddler cannot finish before the request whose batch it
        // topped off — its tail rides the later launch.
        assert!(r1.done_us >= r0.done_us);
    }

    #[test]
    fn multi_stream_overlap_conserves_work_and_removes_queue_wait() {
        let (m, t, arch) = setup();
        let backend = TorchRecBackend::compile(&m);
        // Four equal requests arriving together.
        let reqs: Vec<Request> = (0..4)
            .map(|i| Request {
                id: i,
                arrival_us: 0.0,
                batch: Batch::generate(&m, 128, 2000 + i),
            })
            .collect();
        let serve = |streams: u32| {
            runtime(
                &backend,
                &m,
                &t,
                &arch,
                ServeConfig {
                    streams,
                    policy: BatchPolicy::Unsplit,
                    slo_deadline_us: None,
                    closed_loop: false,
                    hot_shard_cap: None,
                },
            )
            .serve(&reqs)
            .unwrap()
        };
        let serial = serve(1);
        let overlapped = serve(4);
        // Processor sharing conserves total work, so the makespan is
        // identical; what changes is where requests spend the time.
        assert!((overlapped.makespan_us - serial.makespan_us).abs() < 1e-6);
        // With one stream, later requests wait in the launch queue;
        // with four streams nothing queues — the wait converts into
        // stretched (time-shared) device service.
        assert!(serial.mean_queue_us() > 0.0);
        assert_eq!(overlapped.mean_queue_us(), 0.0);
        assert!(overlapped.mean_latency_us() <= serial.percentile_us(1.0) + 1e-6);
    }

    #[test]
    fn slo_shedding_kicks_in_under_overload_and_bounds_tail() {
        let (m, t, arch) = setup();
        let backend = TorchRecBackend::compile(&m);
        // Offered load far beyond capacity: everything arrives at once.
        let reqs: Vec<Request> = (0..40)
            .map(|i| Request {
                id: i,
                arrival_us: i as f64,
                batch: Batch::generate(&m, 512, 3000 + i),
            })
            .collect();
        let mk = |slo: Option<f64>| {
            runtime(
                &backend,
                &m,
                &t,
                &arch,
                ServeConfig {
                    streams: 2,
                    policy: BatchPolicy::Split { cap: 128 },
                    slo_deadline_us: slo,
                    closed_loop: false,
                    hot_shard_cap: None,
                },
            )
            .serve(&reqs)
            .unwrap()
        };
        let open = mk(None);
        let slo = mk(Some(2_000.0));
        assert_eq!(open.shed_rate(), 0.0);
        assert!(
            slo.shed_rate() > 0.5,
            "overload must shed: {}",
            slo.shed_rate()
        );
        assert!(
            slo.percentile_us(1.0) < open.percentile_us(1.0),
            "shedding bounds the tail"
        );
        // Shed records keep their identity for accounting.
        for r in slo.records.iter().filter(|r| r.is_shed()) {
            assert_eq!(r.done_us, r.arrival_us);
            assert_eq!(r.service_us, 0.0);
        }
    }

    #[test]
    fn drift_triggers_background_retune_and_hot_swap() {
        let (m, t, arch) = setup();
        let backend = TorchRecBackend::compile(&m);
        // First half in-distribution, second half with far heavier
        // pooling — mean lookups-per-sample jumps past the threshold.
        let shifted_model = shift_distribution(&m, 2.5, 0.0);
        let mut reqs = WorkloadSpec::long_tail(400.0).stream(&m, 16, 5);
        let mut tail = WorkloadSpec::long_tail(400.0).stream(&shifted_model, 24, 6);
        let t0 = reqs.last().unwrap().arrival_us;
        for (k, r) in tail.iter_mut().enumerate() {
            r.arrival_us += t0;
            r.id = 16 + k as u64;
        }
        reqs.append(&mut tail);

        let retune_inputs = Cell::new(0usize);
        let mut policy = RetunePolicy {
            drift: DriftConfig {
                window: 8,
                threshold: 0.3,
                feature_threshold: 0.5,
            },
            retune_latency_us: 1_000.0,
            lifecycle: LifecycleConfig::default(),
            retuner: Box::new(|recent: &[Batch]| {
                retune_inputs.set(recent.len());
                TunedCandidate::from(
                    Box::new(TorchRecBackend::compile(&shifted_model)) as Box<dyn Backend>
                )
            }),
        };
        let rt = runtime(
            &backend,
            &m,
            &t,
            &arch,
            ServeConfig {
                streams: 2,
                policy: BatchPolicy::Split { cap: 256 },
                slo_deadline_us: None,
                closed_loop: false,
                hot_shard_cap: None,
            },
        );
        let report = rt.serve_with_retune(&reqs, &mut policy).unwrap();
        assert!(report.retunes >= 1, "drift must trigger a retune");
        assert!(retune_inputs.get() > 0, "retuner sees the recent window");
        assert_eq!(
            report.records.len(),
            40,
            "serving never pauses for a retune"
        );
        assert_eq!(report.shed_rate(), 0.0);
    }

    #[test]
    fn in_distribution_traffic_never_retunes() {
        let (m, t, arch) = setup();
        let backend = TorchRecBackend::compile(&m);
        let reqs = WorkloadSpec::long_tail(400.0).stream(&m, 40, 9);
        let mut policy = RetunePolicy {
            drift: DriftConfig {
                window: 8,
                threshold: 0.3,
                feature_threshold: 0.5,
            },
            retune_latency_us: 1_000.0,
            lifecycle: LifecycleConfig::default(),
            retuner: Box::new(|_: &[Batch]| {
                panic!("retuner must not fire on in-distribution traffic")
            }),
        };
        let rt = runtime(&backend, &m, &t, &arch, ServeConfig::default());
        let report = rt.serve_with_retune(&reqs, &mut policy).unwrap();
        assert_eq!(report.retunes, 0);
    }

    #[test]
    fn closed_loop_split_matches_sum_of_chunk_latencies() {
        let (m, t, arch) = setup();
        let backend = TorchRecBackend::compile(&m);
        let big = Batch::generate(&m, 512, 3);
        // Reference: run the four 128-sample chunks directly.
        let mut expect = 0.0;
        let mut expect_launches = 0u64;
        for chunk in big.split(128).unwrap() {
            let run = backend.run(&m, &t, &chunk, &arch).unwrap();
            expect += run.latency_us;
            expect_launches += u64::from(run.kernel_launches);
        }
        let reqs = vec![Request {
            id: 0,
            arrival_us: 0.0,
            batch: big,
        }];
        let rt = runtime(
            &backend,
            &m,
            &t,
            &arch,
            ServeConfig {
                streams: 1,
                policy: BatchPolicy::Split { cap: 128 },
                slo_deadline_us: None,
                closed_loop: true,
                hot_shard_cap: None,
            },
        );
        let report = rt.serve(&reqs).unwrap();
        assert_eq!(report.kernel_launches, expect_launches);
        let lat = report.records[0].latency_us();
        assert!(
            (lat - expect).abs() < 1e-6,
            "closed-loop split latency {lat} != chunk-sum {expect}"
        );
    }

    #[test]
    fn zero_split_cap_is_a_policy_error() {
        let (m, t, arch) = setup();
        let backend = TorchRecBackend::compile(&m);
        let rt = runtime(
            &backend,
            &m,
            &t,
            &arch,
            ServeConfig {
                streams: 1,
                policy: BatchPolicy::Split { cap: 0 },
                slo_deadline_us: None,
                closed_loop: false,
                hot_shard_cap: None,
            },
        );
        let reqs = WorkloadSpec::long_tail(100.0).stream(&m, 2, 1);
        assert!(matches!(rt.serve(&reqs), Err(ServeError::Policy(_))));
    }

    #[test]
    fn unsupported_backend_error_propagates() {
        struct Refuses;
        impl Backend for Refuses {
            fn name(&self) -> &'static str {
                "refuses"
            }
            fn run(
                &self,
                _: &ModelConfig,
                _: &TableSet,
                _: &Batch,
                _: &GpuArch,
            ) -> Result<BackendRun, BackendError> {
                Err(BackendError::Unsupported("always".into()))
            }
        }
        let (m, t, arch) = setup();
        let backend = Refuses;
        let rt = runtime(&backend, &m, &t, &arch, ServeConfig::default());
        let reqs = WorkloadSpec::long_tail(100.0).stream(&m, 1, 1);
        assert!(matches!(rt.serve(&reqs), Err(ServeError::Backend(_))));
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let (m, t, arch) = setup();
        let backend = TorchRecBackend::compile(&m);
        let rt = runtime(&backend, &m, &t, &arch, ServeConfig::default());
        let report = rt.serve(&[]).unwrap();
        assert!(report.records.is_empty());
        assert_eq!(report.kernel_launches, 0);
        assert_eq!(report.makespan_us, 0.0);
    }

    proptest! {
        /// Hysteresis under sustained drift: a stream that keeps the
        /// drift monitor firing must never launch overlapping retunes —
        /// every attempt resolves before the next starts, failures back
        /// off, and episode ends respect the cooldown. And the whole
        /// lifecycle trace replays bit for bit.
        #[test]
        fn sustained_drift_never_overlaps_retunes_and_replays_bit_for_bit(
            seed in 0u64..50,
            max_attempts in 1u32..4,
            base_backoff_us in 500.0f64..3_000.0,
            cooldown_us in 1_000.0f64..6_000.0,
        ) {
            let (m, t, arch) = setup();
            let backend = TorchRecBackend::compile(&m);
            // Every request comes from a heavily shifted distribution,
            // so the monitor window trips on every verdict.
            let shifted = shift_distribution(&m, 2.5, 0.0);
            let spec = WorkloadSpec { size_unit: 8, ..WorkloadSpec::long_tail(300.0) };
            let reqs = spec.stream(&shifted, 24, seed);
            let lifecycle = LifecycleConfig {
                // Every attempt fails to compile: the machine must walk
                // backoff → retry → give-up → cooldown forever.
                outcomes: OutcomePlan::scripted(vec![RetuneOutcome::CompileFail; 64]),
                retry: RetryPolicy {
                    max_attempts,
                    base_backoff_us,
                    backoff_multiplier: 2.0,
                    cooldown_us,
                },
                ..LifecycleConfig::default()
            };
            let mk_policy = || RetunePolicy {
                drift: DriftConfig { window: 4, threshold: 0.3, feature_threshold: 0.5 },
                retune_latency_us: 800.0,
                lifecycle: lifecycle.clone(),
                retuner: Box::new(|_: &[Batch]| {
                    unreachable!("a compile-fail attempt never reaches the retuner")
                }),
            };
            let rt = runtime(&backend, &m, &t, &arch, ServeConfig {
                streams: 2,
                policy: BatchPolicy::Split { cap: 256 },
                slo_deadline_us: None,
                closed_loop: false,
                hot_shard_cap: None,
            });
            let a = rt.serve_with_retune(&reqs, &mut mk_policy()).unwrap();
            let b = rt.serve_with_retune(&reqs, &mut mk_policy()).unwrap();

            prop_assert!(a.lifecycle.retunes_attempted >= 1, "the stream must drift");
            prop_assert_eq!(a.lifecycle.retunes_promoted, 0);
            prop_assert_eq!(a.lifecycle.retunes_failed, a.lifecycle.retunes_attempted);

            // No overlap: each RetuneStarted resolves (fails) before the
            // next; failed attempts respect exponential backoff and an
            // exhausted episode respects the cooldown.
            let mut open: Option<f64> = None;
            let mut last_fail: Option<(f64, u32)> = None;
            let mut episode_end: Option<f64> = None;
            let mut episode_len = 0u32;
            for ev in &a.lifecycle_trace {
                match *ev {
                    LifecycleEvent::RetuneStarted { t_us, .. } => {
                        prop_assert!(open.is_none(), "overlapping retune at {t_us}");
                        if let Some((t_fail, k)) = last_fail {
                            let backoff = base_backoff_us * 2.0f64.powi(k as i32 - 1);
                            prop_assert!(
                                t_us - t_fail >= backoff - 1e-9,
                                "retry at {t_us} ignored a {backoff} µs backoff from {t_fail}"
                            );
                        }
                        if let Some(t_end) = episode_end {
                            prop_assert!(
                                t_us - t_end >= cooldown_us - 1e-9,
                                "episode at {t_us} ignored the {cooldown_us} µs cooldown"
                            );
                        }
                        open = Some(t_us);
                        episode_len += 1;
                        last_fail = None;
                    }
                    LifecycleEvent::RetuneFailed { t_us, .. } => {
                        prop_assert!(open.is_some(), "failure without an attempt");
                        open = None;
                        last_fail = Some((t_us, episode_len));
                    }
                    LifecycleEvent::GaveUp { t_us, attempts } => {
                        prop_assert_eq!(attempts, max_attempts);
                        episode_end = Some(t_us);
                        episode_len = 0;
                        last_fail = None;
                    }
                    _ => prop_assert!(false, "unexpected event {ev:?}"),
                }
            }

            // Same seed, same policy ⇒ the same lifecycle trace and the
            // same report, bit for bit.
            prop_assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap()
            );
            prop_assert_eq!(a, b);
        }
    }
}
