//! The co-execution kernel of the local tuning stage (paper Figure 7).
//!
//! All candidates of one feature run in a single kernel on duplicated
//! inputs `ξ^(f)`, so they are ranked under identical conditions; padding
//! blocks emulating the other features' memory behaviour fill the SM slots
//! so intra-SM contention and grid-level L2 pressure match a busy fused
//! kernel. Without the padding, a single feature's blocks would spread
//! across idle SMs and occupancy would stop mattering — the exact failure
//! mode the paper describes for the straw-man tuner.

use recflex_data::FeatureBatch;
use recflex_embedding::FeatureWorkload;
use recflex_schedules::ScheduleInstance;
use recflex_sim::{BlockProfile, BlockResources, ProfileCtx, SimKernel};
use std::ops::Range;

/// A synthetic profile standing in for "one average block of the rest of
/// the model" — the redundant embedding operations the paper's padding
/// blocks perform.
pub fn padding_profile(history: &[Vec<FeatureWorkload>]) -> BlockProfile {
    // Aggregate the model's per-block averages over all features/batches.
    let mut total_bytes = 0u64;
    let mut unique_bytes = 0u64;
    let mut total_lookups = 0u64;
    let mut n_blocks = 0u64;
    for batch in history {
        for w in batch {
            total_bytes += w.bytes_read();
            unique_bytes += w.unique_bytes();
            total_lookups += w.total_lookups as u64;
            // Assume a generic 4-samples-per-block mapping for sizing.
            n_blocks += (w.batch_size as u64).div_ceil(4).max(1);
        }
    }
    let n_blocks = n_blocks.max(1) / history.len().max(1) as u64;
    let bytes = (total_bytes / history.len().max(1) as u64) / n_blocks.max(1);
    let unique = (unique_bytes / history.len().max(1) as u64) / n_blocks.max(1);
    let lookups = (total_lookups / history.len().max(1) as u64) / n_blocks.max(1);
    let transactions = bytes / 32;
    BlockProfile {
        issue_cycles: (transactions as f64 * 3.0).max(50.0),
        mem_transactions: transactions.max(4),
        bytes_accessed: bytes.max(128),
        unique_bytes: unique.min(bytes).max(64),
        bytes_written: lookups.max(1) * 16,
        active_warps: 4,
        thread_active_sum: transactions * 32,
        thread_useful_sum: transactions * 24,
        thread_slot_sum: transactions * 32,
        barriers: 0,
        flops: lookups.max(1) * 32,
        mlp: 3.5,
        critical_mem_chain: (transactions / 4).max(1),
        uvm_bytes: 0,
        uvm_transactions: 0,
    }
}

/// Co-execution kernel: candidate segments + padding blocks.
pub struct CoExecKernel<'a> {
    /// The feature's candidates, each given its own block segment on a
    /// duplicate of the same input.
    pub candidates: &'a [ScheduleInstance],
    /// The feature's CSR (shared by all segments — the duplicated `ξ^(f)`).
    pub fb: &'a FeatureBatch,
    /// The feature's workload analysis.
    pub workload: &'a FeatureWorkload,
    /// Block ranges per candidate.
    segments: Vec<Range<u32>>,
    /// Number of trailing padding blocks.
    pub pad_blocks: u32,
    /// The profile every padding block reports.
    pub pad_profile: BlockProfile,
    resources: BlockResources,
}

impl<'a> CoExecKernel<'a> {
    /// Build the co-execution kernel. `pad_blocks` trailing blocks carry
    /// `pad_profile` (use zero padding for straw-man isolated launches).
    pub fn new(
        candidates: &'a [ScheduleInstance],
        fb: &'a FeatureBatch,
        workload: &'a FeatureWorkload,
        pad_blocks: u32,
        pad_profile: BlockProfile,
    ) -> Self {
        assert!(!candidates.is_empty());
        let mut segments = Vec::with_capacity(candidates.len());
        let mut cursor = 0u32;
        for c in candidates {
            let nb = c.required_blocks(workload);
            segments.push(cursor..cursor + nb);
            cursor += nb;
        }
        let resources = candidates
            .iter()
            .map(|c| c.resources())
            .reduce(|a, b| a.union(&b))
            .expect("non-empty candidates");
        CoExecKernel {
            candidates,
            fb,
            workload,
            segments,
            pad_blocks,
            pad_profile,
            resources,
        }
    }

    /// Block range of candidate `i` (for scoring from a launch report).
    pub fn segment(&self, i: usize) -> Range<usize> {
        let r = &self.segments[i];
        r.start as usize..r.end as usize
    }

    /// Grid blocks excluding padding.
    pub fn work_blocks(&self) -> u32 {
        self.segments.last().map(|r| r.end).unwrap_or(0)
    }
}

impl SimKernel for CoExecKernel<'_> {
    fn name(&self) -> &str {
        "recflex_coexec"
    }

    fn grid_blocks(&self) -> u32 {
        self.work_blocks() + self.pad_blocks
    }

    fn resources(&self) -> BlockResources {
        self.resources
    }

    fn profile_block(&self, block_idx: u32, ctx: &ProfileCtx) -> BlockProfile {
        if block_idx >= self.work_blocks() {
            return self.pad_profile;
        }
        // Segments are few (tens); linear scan is branch-predictor friendly.
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.contains(&block_idx) {
                let rel = block_idx - seg.start;
                return self.candidates[i].block_profile(self.fb, self.workload, rel, ctx.reg_cap);
            }
        }
        unreachable!("block {block_idx} outside all segments")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{Batch, ModelPreset};
    use recflex_embedding::analyze_batch;
    use recflex_schedules::enumerate_candidates;
    use recflex_sim::{launch, GpuArch, LaunchConfig};

    fn setup() -> (recflex_data::ModelConfig, Batch) {
        let m = ModelPreset::A.scaled(0.01);
        let b = Batch::generate(&m, 64, 3);
        (m, b)
    }

    #[test]
    fn segments_partition_work_blocks() {
        let (m, b) = setup();
        let ws = analyze_batch(&m, &b);
        let f = m.features.len() - 1; // a multi-hot feature
        let cs = enumerate_candidates(f, &m.features[f]).unwrap();
        let pad = padding_profile(std::slice::from_ref(&ws));
        let k = CoExecKernel::new(&cs.candidates, &b.features[f], &ws[f], 100, pad);
        let mut covered = 0u32;
        for i in 0..cs.len() {
            let seg = k.segment(i);
            assert_eq!(seg.start as u32, covered);
            covered = seg.end as u32;
            assert_eq!(
                (seg.end - seg.start) as u32,
                cs.candidates[i].required_blocks(&ws[f])
            );
        }
        assert_eq!(covered, k.work_blocks());
        assert_eq!(k.grid_blocks(), covered + 100);
    }

    #[test]
    fn padding_blocks_report_pad_profile() {
        let (m, b) = setup();
        let ws = analyze_batch(&m, &b);
        let cs = enumerate_candidates(0, &m.features[0]).unwrap();
        let pad = padding_profile(std::slice::from_ref(&ws));
        let k = CoExecKernel::new(&cs.candidates, &b.features[0], &ws[0], 10, pad);
        let ctx = ProfileCtx::default();
        let p = k.profile_block(k.grid_blocks() - 1, &ctx);
        assert_eq!(p, pad);
    }

    #[test]
    fn coexec_launches_and_scores_segments() {
        let (m, b) = setup();
        let ws = analyze_batch(&m, &b);
        let f = m.features.len() - 1;
        let cs = enumerate_candidates(f, &m.features[f]).unwrap();
        let pad = padding_profile(std::slice::from_ref(&ws));
        let k = CoExecKernel::new(&cs.candidates, &b.features[f], &ws[f], 320, pad);
        let report = launch(&k, &GpuArch::v100(), &LaunchConfig::with_occupancy(4)).unwrap();
        // Every candidate gets a finite positive score.
        for i in 0..cs.len() {
            let score = report.block_time_sum(k.segment(i));
            assert!(score.is_finite() && score > 0.0, "candidate {i}");
        }
    }

    #[test]
    fn padding_profile_is_memory_heavy() {
        let (m, b) = setup();
        let ws = analyze_batch(&m, &b);
        let pad = padding_profile(&[ws]);
        assert!(pad.bytes_accessed > 0);
        assert!(pad.unique_bytes <= pad.bytes_accessed);
        assert!(pad.mem_transactions > 0);
    }
}
