//! Global tuning stage: pick the occupancy (Equation 4).
//!
//! For every occupancy level, fuse that level's local-stage winners with
//! explicit occupancy control and measure the real fused kernel on the
//! sampled historical batches; keep the level with the lowest mean latency.

use recflex_compiler::{FusedKernelObject, FusedSpec};
use recflex_schedules::ScheduleInstance;
use recflex_sim::launch;

use crate::{TuneResult, TuningContext};

/// Run the global stage over `levels` with the corresponding local-stage
/// `winners` (one choice vector per level). `local_evaluations` is the
/// launch count the local stage already spent; the fused measurements made
/// here are added on top for [`TuneResult::evaluations`].
pub fn tune_global_stage(
    ctx: &TuningContext<'_>,
    levels: &[u32],
    winners: Vec<Vec<usize>>,
    local_evaluations: usize,
) -> TuneResult {
    assert_eq!(levels.len(), winners.len());
    let tables = recflex_embedding::TableSet::for_model(ctx.model);

    let mut global_latencies = Vec::with_capacity(levels.len());
    let mut evaluations = local_evaluations;
    // (level index, occupancy decision) → measured mean latency.
    let mut best: Option<(usize, Option<u32>, f64)> = None;

    for (li, (&k, choice)) in levels.iter().zip(&winners).enumerate() {
        let schedules: Vec<ScheduleInstance> = choice
            .iter()
            .enumerate()
            .map(|(f, &c)| ctx.candidates[f].candidates[c])
            .collect();
        // Measure the winner set both with explicit control at `O_k` and
        // at the union's natural occupancy: controlling occupancy must
        // never be a regression over simply fusing the winners.
        for occ in [Some(k), None] {
            let mut spec = FusedSpec::new(schedules.clone());
            spec.occupancy_target = occ;
            let obj = FusedKernelObject::compile(spec);

            let mut total = 0.0f64;
            let mut measured = 0usize;
            for batch in ctx.tuning_batches() {
                let bound = obj.bind(ctx.model, &tables, batch);
                evaluations += 1;
                if let Ok(report) = launch(&bound, ctx.arch, &obj.launch_config()) {
                    total += report.latency_us;
                    measured += 1;
                }
            }
            if measured == 0 {
                continue; // infeasible for the union kernel
            }
            let mean = total / measured as f64;
            if occ.is_some() {
                global_latencies.push((k, mean));
            }
            if best.map(|(_, _, b)| mean < b).unwrap_or(true) {
                best = Some((li, occ, mean));
            }
        }
    }

    let (best_li, best_occ, best_mean) =
        best.expect("at least one occupancy level must be feasible");
    let choices = winners[best_li].clone();
    let schedules: Vec<ScheduleInstance> = choices
        .iter()
        .enumerate()
        .map(|(f, &c)| ctx.candidates[f].candidates[c])
        .collect();
    TuneResult {
        schedules,
        choices,
        occupancy: best_occ,
        global_latencies,
        evaluations,
        mean_latency_us: best_mean,
    }
}

#[cfg(test)]
mod tests {
    use crate::{tune_two_stage, TunerConfig};
    use recflex_data::{Dataset, ModelPreset};
    use recflex_sim::GpuArch;

    #[test]
    fn two_stage_produces_complete_result() {
        let m = ModelPreset::A.scaled(0.01);
        let ds = Dataset::synthesize(&m, 2, 48, 5);
        let arch = GpuArch::v100();
        let result = tune_two_stage(&m, &ds, &arch, &TunerConfig::fast());
        assert_eq!(result.schedules.len(), m.features.len());
        assert_eq!(result.choices.len(), m.features.len());
        if let Some(occ) = result.occupancy {
            assert!(TunerConfig::fast().occupancy_levels.unwrap().contains(&occ));
            // The chosen level's latency is the minimum of the measured
            // controlled variants.
            let best = result
                .global_latencies
                .iter()
                .map(|&(_, l)| l)
                .fold(f64::INFINITY, f64::min);
            let chosen = result
                .global_latencies
                .iter()
                .find(|&&(k, _)| k == occ)
                .map(|&(_, l)| l)
                .unwrap();
            assert!(chosen <= best + 1e-9);
        }
        assert!(!result.global_latencies.is_empty());
    }

    #[test]
    fn two_stage_deterministic() {
        let m = ModelPreset::C.scaled(0.008);
        let ds = Dataset::synthesize(&m, 2, 32, 9);
        let arch = GpuArch::v100();
        let a = tune_two_stage(&m, &ds, &arch, &TunerConfig::fast());
        let b = tune_two_stage(&m, &ds, &arch, &TunerConfig::fast());
        assert_eq!(a.choices, b.choices);
        assert_eq!(a.occupancy, b.occupancy);
    }

    #[test]
    fn heterogeneous_model_selects_multiple_schedule_kinds() {
        // The raison d'être of RecFlex: different features get different
        // schedules. On a heterogeneous model the tuner must not collapse
        // to a single uniform choice.
        let m = ModelPreset::A.scaled(0.02);
        let ds = Dataset::synthesize(&m, 2, 64, 5);
        let arch = GpuArch::v100();
        let result = tune_two_stage(&m, &ds, &arch, &TunerConfig::fast());
        let kinds: std::collections::HashSet<_> = result.schedules.iter().map(|s| s.kind).collect();
        let labels: std::collections::HashSet<_> =
            result.schedules.iter().map(|s| s.label()).collect();
        assert!(
            kinds.len() >= 2 || labels.len() >= 3,
            "heterogeneity-aware tuning must pick diverse schedules: kinds {kinds:?}"
        );
    }
}
