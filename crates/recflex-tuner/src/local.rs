//! Local tuning stage: per-feature winners under a fixed occupancy.
//!
//! For occupancy `O_k` and feature `f`, the stage launches one co-execution
//! kernel per tuning batch (candidates side by side on duplicated inputs,
//! grid padded to fill the SM slots) and sums every candidate's block times
//! across batches — Equations 3 + 5. The feature loop is embarrassingly
//! parallel (the paper farms it over eight GPUs; we farm it over cores).

use rayon::prelude::*;
use recflex_sim::{launch, LaunchConfig};

use crate::coexec::{padding_profile, CoExecKernel};
use crate::{TunerConfig, TuningContext};

/// Tune every feature under occupancy target `k`. Returns the winning
/// candidate index per feature.
pub fn tune_local_stage(ctx: &TuningContext<'_>, k: u32, cfg: &TunerConfig) -> Vec<usize> {
    let pad = padding_profile(&ctx.history);
    let slots = ctx.arch.num_sms as f64 * k as f64;
    let pad_target = (slots * cfg.pad_fill).ceil() as u32;

    ctx.candidates
        .par_iter()
        .map(|cs| {
            let f = cs.feature_idx;
            let mut scores = vec![0.0f64; cs.len()];
            let slots = (ctx.arch.num_sms * k).max(1) as f64;
            for (bi, batch) in ctx.tuning_batches().iter().enumerate() {
                let w = &ctx.history[bi][f];
                let fb = &batch.features[f];
                let kern = CoExecKernel::new(&cs.candidates, fb, w, pad_target, pad);
                let config = LaunchConfig::with_occupancy(k);
                let report = match launch(&kern, ctx.arch, &config) {
                    Ok(r) => r,
                    Err(_) => {
                        // Candidate union unlaunchable at this occupancy:
                        // fall back to per-candidate isolated measurement.
                        continue;
                    }
                };
                for (i, score) in scores.iter_mut().enumerate() {
                    // The candidate's contribution to the fused two-bound
                    // makespan: its Equation-3 block-time sum spread over
                    // the SM slots, floored by its own worst straggler
                    // block. For saturating workloads the sum term
                    // dominates and this reduces to the paper's Eq. 3.
                    let seg = kern.segment(i);
                    let sum = report.block_time_sum(seg.clone()) / slots;
                    let straggler = report.block_solo_times[seg]
                        .iter()
                        .copied()
                        .fold(0.0f64, f64::max);
                    *score += sum.max(straggler);
                }
            }
            argmin(&scores)
        })
        .collect()
}

/// Index of the smallest score (first on ties; all-zero scores fall back
/// to candidate 0, a safe default).
pub(crate) fn argmin(scores: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_v = f64::INFINITY;
    for (i, &v) in scores.iter().enumerate() {
        let v = if v == 0.0 { f64::INFINITY } else { v };
        if v < best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{Dataset, ModelPreset};
    use recflex_sim::GpuArch;

    #[test]
    fn argmin_basics() {
        assert_eq!(argmin(&[3.0, 1.0, 2.0]), 1);
        assert_eq!(argmin(&[1.0, 1.0]), 0, "ties break to the first");
        assert_eq!(argmin(&[0.0, 0.0]), 0, "all-unmeasured falls back to 0");
        assert_eq!(argmin(&[0.0, 5.0]), 1, "unmeasured treated as infinity");
    }

    #[test]
    fn local_stage_returns_valid_choices() {
        let m = ModelPreset::A.scaled(0.01);
        let ds = Dataset::synthesize(&m, 2, 48, 5);
        let arch = GpuArch::v100();
        let cfg = TunerConfig::fast();
        let ctx = TuningContext::new(&m, &ds, &arch, &cfg);
        let winners = tune_local_stage(&ctx, 4, &cfg);
        assert_eq!(winners.len(), m.features.len());
        for (f, &w) in winners.iter().enumerate() {
            assert!(
                w < ctx.candidates[f].len(),
                "feature {f} choice out of range"
            );
        }
    }

    #[test]
    fn local_stage_is_deterministic() {
        let m = ModelPreset::C.scaled(0.008);
        let ds = Dataset::synthesize(&m, 2, 32, 9);
        let arch = GpuArch::v100();
        let cfg = TunerConfig::fast();
        let ctx = TuningContext::new(&m, &ds, &arch, &cfg);
        assert_eq!(
            tune_local_stage(&ctx, 4, &cfg),
            tune_local_stage(&ctx, 4, &cfg)
        );
    }

    #[test]
    fn occupancy_changes_winners_for_some_feature() {
        // The whole point of the two-stage design: the best schedule
        // depends on the occupancy environment. Over a heterogeneous
        // model at least one feature should flip between extreme levels.
        let m = ModelPreset::A.scaled(0.02);
        let ds = Dataset::synthesize(&m, 2, 64, 5);
        let arch = GpuArch::v100();
        let cfg = TunerConfig::fast();
        let ctx = TuningContext::new(&m, &ds, &arch, &cfg);
        let low = tune_local_stage(&ctx, 1, &cfg);
        let high = tune_local_stage(&ctx, 16, &cfg);
        assert_ne!(low, high, "occupancy must matter for schedule choice");
    }
}
