//! Warm-started tuning: resume from a vault profile instead of sweeping.
//!
//! A [`ScheduleProfile`] stores candidate *indices* and the chosen
//! schedules' labels. Resuming re-enumerates the candidate sets against
//! the *current* build and demands index → label agreement, so a profile
//! written by a build with a different enumeration order (skew the schema
//! version cannot see) is rejected with a structured [`ResumeError`] —
//! never silently resumed into the wrong schedule. A valid profile is
//! re-validated with one fused measurement per tuning batch: strictly
//! cheaper than the cold sweep's `O(K·F·B)` co-execution launches.

use recflex_compiler::{FusedKernelObject, FusedSpec};
use recflex_data::{Dataset, ModelConfig};
use recflex_schedules::{CandidateError, ScheduleInstance, ScheduleProfile};
use recflex_sim::{launch, GpuArch};

use crate::{TuneResult, TunerConfig, TuningContext};

/// Why a stored profile could not be resumed. Every variant renders a
/// deterministic diagnostic; the caller falls back to a cold tune.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// Candidate enumeration itself failed (degenerate feature).
    Candidate(CandidateError),
    /// The profile covers a different number of features than the model.
    FeatureCount {
        /// Features in the profile.
        profile: usize,
        /// Features in the model.
        model: usize,
    },
    /// A stored choice index is out of range for today's candidate set.
    ChoiceOutOfRange {
        /// Feature index.
        feature_idx: usize,
        /// The stored choice.
        choice: usize,
        /// Today's candidate count.
        available: usize,
    },
    /// The stored label disagrees with the schedule at the stored index —
    /// the enumeration order changed underneath the profile.
    LabelSkew {
        /// Feature index.
        feature_idx: usize,
        /// Label recorded in the profile.
        stored: String,
        /// Label of today's candidate at that index.
        found: String,
    },
    /// The resumed fused kernel is unlaunchable on every tuning batch.
    Infeasible,
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Candidate(e) => write!(f, "{e}"),
            ResumeError::FeatureCount { profile, model } => write!(
                f,
                "profile covers {profile} features, model has {model}"
            ),
            ResumeError::ChoiceOutOfRange {
                feature_idx,
                choice,
                available,
            } => write!(
                f,
                "feature {feature_idx}: stored choice {choice} out of range ({available} candidates)"
            ),
            ResumeError::LabelSkew {
                feature_idx,
                stored,
                found,
            } => write!(
                f,
                "feature {feature_idx}: stored label `{stored}` but candidate is `{found}` (enumeration skew)"
            ),
            ResumeError::Infeasible => {
                write!(f, "resumed fused kernel unlaunchable on every tuning batch")
            }
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<CandidateError> for ResumeError {
    fn from(e: CandidateError) -> Self {
        ResumeError::Candidate(e)
    }
}

/// Resume tuning from a stored profile: validate it against today's
/// candidate sets, then re-measure the fused kernel once per tuning batch.
/// On success the result's `choices`/`schedules`/`occupancy` are exactly
/// the profile's, and `evaluations` is the (small) validation launch count.
pub fn resume_from_profile(
    model: &ModelConfig,
    dataset: &Dataset,
    arch: &GpuArch,
    cfg: &TunerConfig,
    profile: &ScheduleProfile,
) -> Result<TuneResult, ResumeError> {
    let ctx = TuningContext::new(model, dataset, arch, cfg);
    if profile.choices.len() != ctx.candidates.len() {
        return Err(ResumeError::FeatureCount {
            profile: profile.choices.len(),
            model: ctx.candidates.len(),
        });
    }
    let mut schedules: Vec<ScheduleInstance> = Vec::with_capacity(profile.choices.len());
    for (f, (&choice, stored_label)) in profile
        .choices
        .iter()
        .zip(&profile.schedule_labels)
        .enumerate()
    {
        let cs = &ctx.candidates[f];
        if choice >= cs.len() {
            return Err(ResumeError::ChoiceOutOfRange {
                feature_idx: f,
                choice,
                available: cs.len(),
            });
        }
        let candidate = cs.candidates[choice];
        let found = candidate.label();
        if &found != stored_label {
            return Err(ResumeError::LabelSkew {
                feature_idx: f,
                stored: stored_label.clone(),
                found,
            });
        }
        schedules.push(candidate);
    }

    // Validation measurement: the stored winner, compiled exactly as the
    // cold path would, once per tuning batch.
    let tables = recflex_embedding::TableSet::for_model(ctx.model);
    let mut spec = FusedSpec::new(schedules.clone());
    spec.occupancy_target = profile.occupancy;
    let obj = FusedKernelObject::compile(spec);
    let mut total = 0.0f64;
    let mut measured = 0usize;
    let mut evaluations = 0usize;
    for batch in ctx.tuning_batches() {
        let bound = obj.bind(ctx.model, &tables, batch);
        evaluations += 1;
        if let Ok(report) = launch(&bound, ctx.arch, &obj.launch_config()) {
            total += report.latency_us;
            measured += 1;
        }
    }
    if measured == 0 {
        return Err(ResumeError::Infeasible);
    }
    let mean = total / measured as f64;
    let global_latencies = profile
        .occupancy
        .map(|k| vec![(k, mean)])
        .unwrap_or_default();
    Ok(TuneResult {
        schedules,
        choices: profile.choices.clone(),
        occupancy: profile.occupancy,
        global_latencies,
        evaluations,
        mean_latency_us: mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tune_two_stage;
    use recflex_data::{Dataset, ModelPreset};
    use recflex_schedules::{distribution_summary, ProfileKey};

    const SCHEMA_VERSION: u32 = recflex_schedules::store::SCHEMA_VERSION;

    fn profile_of(model: &ModelConfig, dataset: &Dataset, result: &TuneResult) -> ScheduleProfile {
        ScheduleProfile {
            schema_version: SCHEMA_VERSION,
            key: ProfileKey {
                model: model.name.clone(),
                arch: "V100".to_string(),
                dist_summary: distribution_summary(dataset.batches()),
            },
            choices: result.choices.clone(),
            schedule_labels: result.schedules.iter().map(|s| s.label()).collect(),
            occupancy: result.occupancy,
            mean_latency_us: result.mean_latency_us,
            hash: String::new(),
        }
    }

    #[test]
    fn warm_resume_is_cheaper_and_identical() {
        let m = ModelPreset::A.scaled(0.01);
        let ds = Dataset::synthesize(&m, 2, 48, 5);
        let arch = GpuArch::v100();
        let cfg = TunerConfig::fast();
        let cold = tune_two_stage(&m, &ds, &arch, &cfg);
        let profile = profile_of(&m, &ds, &cold);
        let warm = resume_from_profile(&m, &ds, &arch, &cfg, &profile).unwrap();
        assert_eq!(warm.choices, cold.choices);
        assert_eq!(warm.occupancy, cold.occupancy);
        assert_eq!(
            warm.schedules.iter().map(|s| s.label()).collect::<Vec<_>>(),
            cold.schedules.iter().map(|s| s.label()).collect::<Vec<_>>()
        );
        assert!(
            warm.evaluations < cold.evaluations,
            "warm {} must beat cold {}",
            warm.evaluations,
            cold.evaluations
        );
        assert!(warm.mean_latency_us.is_finite());
    }

    #[test]
    fn label_skew_is_rejected() {
        let m = ModelPreset::A.scaled(0.01);
        let ds = Dataset::synthesize(&m, 2, 48, 5);
        let arch = GpuArch::v100();
        let cfg = TunerConfig::fast();
        let cold = tune_two_stage(&m, &ds, &arch, &cfg);
        let mut profile = profile_of(&m, &ds, &cold);
        profile.schedule_labels[0] = "warp_t999_v9_u9".to_string();
        let err = resume_from_profile(&m, &ds, &arch, &cfg, &profile).unwrap_err();
        assert!(matches!(err, ResumeError::LabelSkew { feature_idx: 0, .. }));
        assert!(err.to_string().contains("enumeration skew"));
    }

    #[test]
    fn out_of_range_choice_and_feature_count_are_rejected() {
        let m = ModelPreset::A.scaled(0.01);
        let ds = Dataset::synthesize(&m, 2, 48, 5);
        let arch = GpuArch::v100();
        let cfg = TunerConfig::fast();
        let cold = tune_two_stage(&m, &ds, &arch, &cfg);

        let mut oob = profile_of(&m, &ds, &cold);
        oob.choices[1] = 10_000;
        assert!(matches!(
            resume_from_profile(&m, &ds, &arch, &cfg, &oob).unwrap_err(),
            ResumeError::ChoiceOutOfRange { feature_idx: 1, .. }
        ));

        let mut short = profile_of(&m, &ds, &cold);
        short.choices.pop();
        short.schedule_labels.pop();
        assert!(matches!(
            resume_from_profile(&m, &ds, &arch, &cfg, &short).unwrap_err(),
            ResumeError::FeatureCount { .. }
        ));
    }
}
