//! # recflex-tuner — the interference-aware schedule tuner
//!
//! RecFlex's first component (paper Section IV-A). The tuning problem: pick
//! one schedule per feature so the *fused* kernel is fastest (Equation 1).
//! Brute force is `Π N_f` combinations; tuning features in isolation
//! ignores inter-feature interference (occupancy coupling + resource
//! contention). The paper's answer, reproduced here:
//!
//! 1. **Local stage** ([`local`]): for each candidate occupancy `O_k`
//!    (explicitly enforced via register capping / smem padding) and each
//!    feature `f`, co-execute *all* of `f`'s candidates in one kernel on
//!    duplicated inputs, pad the grid with blocks that emulate the other
//!    features' SM- and L2-level pressure (Figure 7), and rank candidates
//!    by their summed block times (Equation 3). Cost: one kernel per
//!    `(f, k)` — `O(F·K)`.
//! 2. **Global stage** ([`global`]): fuse each occupancy's winners, measure
//!    the real fused kernel on sampled historical batches (Equation 5),
//!    keep the best occupancy (Equation 4). Cost: `O(K)`.
//!
//! The straw-man **separate-and-combine** tuner of Section II-C (no
//! padding, no occupancy control, per-candidate isolated latency) is in
//! [`strawman`] for the Figure 11 ablation.

pub mod coexec;
pub mod cost;
pub mod global;
pub mod local;
pub mod resume;
pub mod strawman;

pub use cost::TuningCost;
pub use resume::{resume_from_profile, ResumeError};

use rayon::prelude::*;
use recflex_data::{Dataset, ModelConfig};
use recflex_embedding::{analyze_batch, FeatureWorkload};
use recflex_schedules::{enumerate_candidates, CandidateSet, ScheduleInstance};
use recflex_sim::GpuArch;

/// Tuner options.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Occupancy levels `O_1..O_K` to enumerate; `None` uses
    /// [`GpuArch::occupancy_levels`].
    pub occupancy_levels: Option<Vec<u32>>,
    /// Historical batches sampled for tuning (Equation 5's `ξ_i`).
    pub tuning_batches: usize,
    /// Padding fill factor: padding blocks are added until the grid holds
    /// this multiple of the GPU's parallel-block slots.
    pub pad_fill: f64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            occupancy_levels: None,
            tuning_batches: 4,
            pad_fill: 2.0,
        }
    }
}

impl TunerConfig {
    /// Reduced-cost configuration for tests and examples.
    pub fn fast() -> Self {
        TunerConfig {
            occupancy_levels: Some(vec![2, 4, 8]),
            tuning_batches: 2,
            pad_fill: 1.5,
        }
    }
}

/// Output of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The selected schedule per feature (the paper's `s`).
    pub schedules: Vec<ScheduleInstance>,
    /// Index of the winning candidate within each feature's candidate set.
    pub choices: Vec<usize>,
    /// The winning occupancy target `O_k` (blocks/SM), if occupancy
    /// control is in force (always for the two-stage tuner, never for the
    /// straw man).
    pub occupancy: Option<u32>,
    /// Global-stage measurements: `(O_k, mean fused latency in µs)` —
    /// the data behind the Equation 4 argmin.
    pub global_latencies: Vec<(u32, f64)>,
    /// Kernel launches this result cost: the currency the profile vault's
    /// warm-start saves. Co-execution launches in the local stage, fused
    /// measurements in the global stage (isolated per-candidate launches
    /// for the straw man); a warm resume pays only its validation
    /// measurements.
    pub evaluations: usize,
    /// Mean fused latency of the chosen configuration in µs (`0.0` for
    /// the straw man, which never measures its fused kernel) — recorded
    /// into stored profiles for deterministic winner selection.
    pub mean_latency_us: f64,
}

/// Shared tuning context: the model, its candidate sets and the analyzed
/// historical batches.
pub struct TuningContext<'a> {
    /// The model being tuned.
    pub model: &'a ModelConfig,
    /// Historical batches (tuning inputs).
    pub dataset: &'a Dataset,
    /// Target architecture.
    pub arch: &'a GpuArch,
    /// Per-feature candidate sets `S^(f)`.
    pub candidates: Vec<CandidateSet>,
    /// Workload analysis of each tuning batch: `[batch][feature]`.
    pub history: Vec<Vec<FeatureWorkload>>,
}

impl<'a> TuningContext<'a> {
    /// Build the context: enumerate candidates and analyze the sampled
    /// history (in parallel).
    pub fn new(
        model: &'a ModelConfig,
        dataset: &'a Dataset,
        arch: &'a GpuArch,
        cfg: &TunerConfig,
    ) -> Self {
        assert!(!dataset.is_empty(), "tuning needs historical data");
        let candidates: Vec<CandidateSet> = model
            .features
            .par_iter()
            .enumerate()
            .map(|(i, f)| {
                enumerate_candidates(i, f)
                    .unwrap_or_else(|e| panic!("model `{}` is untunable: {e}", model.name))
            })
            .collect();
        let n = cfg.tuning_batches.clamp(1, dataset.len());
        let history: Vec<Vec<FeatureWorkload>> = dataset.batches()[..n]
            .par_iter()
            .map(|b| analyze_batch(model, b))
            .collect();
        TuningContext {
            model,
            dataset,
            arch,
            candidates,
            history,
        }
    }

    /// The tuning batches in use.
    pub fn tuning_batches(&self) -> &[recflex_data::Batch] {
        &self.dataset.batches()[..self.history.len()]
    }
}

/// Run the full two-stage interference-simulated tuning.
pub fn tune_two_stage(
    model: &ModelConfig,
    dataset: &Dataset,
    arch: &GpuArch,
    cfg: &TunerConfig,
) -> TuneResult {
    let ctx = TuningContext::new(model, dataset, arch, cfg);
    let levels = cfg
        .occupancy_levels
        .clone()
        .unwrap_or_else(|| arch.occupancy_levels());
    // Local stage: winners per occupancy level. Each level launches one
    // co-execution kernel per (feature, batch) pair.
    let winners_per_level: Vec<Vec<usize>> = levels
        .iter()
        .map(|&k| local::tune_local_stage(&ctx, k, cfg))
        .collect();
    let local_evaluations = levels.len() * ctx.candidates.len() * ctx.history.len();
    // Global stage: pick the occupancy whose fused kernel is fastest.
    global::tune_global_stage(&ctx, &levels, winners_per_level, local_evaluations)
}

/// Run the straw-man separate-and-combine tuning (Figure 11 ablation).
pub fn tune_separate_combine(
    model: &ModelConfig,
    dataset: &Dataset,
    arch: &GpuArch,
    cfg: &TunerConfig,
) -> TuneResult {
    let ctx = TuningContext::new(model, dataset, arch, cfg);
    strawman::tune(&ctx)
}
