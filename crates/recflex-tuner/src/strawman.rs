//! Straw-man tuner: separate-and-combine (paper Section II-C, solution 1).
//!
//! Each candidate is measured in its own *isolated, non-padded* kernel at
//! natural occupancy; the per-feature latency winner is selected and the
//! winners are fused as-is (no occupancy control). This ignores
//! inter-feature interference: isolated blocks spread over idle SMs, see
//! the full DRAM bandwidth and an empty L2, so aggressive schedules look
//! better than they behave inside the busy fused kernel. Figure 11
//! quantifies the damage (two-stage wins by 4.82× on average).

use rayon::prelude::*;
use recflex_sim::{launch, BlockProfile, LaunchConfig};

use crate::coexec::CoExecKernel;
use crate::local::argmin;
use crate::{TuneResult, TuningContext};

/// Wall-clock measurement granularity of micro-kernel timing in µs.
///
/// Isolated per-candidate kernels finish in a handful of microseconds;
/// launch jitter and timer resolution quantize what the straw man can
/// observe, so near-ties are indistinguishable and it falls back to the
/// first-enumerated candidate — one of the reasons isolated measurement
/// fails to rank schedules (paper Section II-C).
const MEASUREMENT_GRANULARITY_US: f64 = 2.0;

/// Run the separate-and-combine tuning.
pub fn tune(ctx: &TuningContext<'_>) -> TuneResult {
    // One isolated launch per (feature, candidate, batch).
    let evaluations: usize = ctx
        .candidates
        .iter()
        .map(|cs| cs.len() * ctx.history.len())
        .sum();
    let choices: Vec<usize> = ctx
        .candidates
        .par_iter()
        .map(|cs| {
            let f = cs.feature_idx;
            let mut scores = vec![0.0f64; cs.len()];
            for (bi, batch) in ctx.tuning_batches().iter().enumerate() {
                let w = &ctx.history[bi][f];
                let fb = &batch.features[f];
                for (i, cand) in cs.candidates.iter().enumerate() {
                    // One isolated kernel per candidate: no padding, no
                    // occupancy control — the straw man's defining sins.
                    let single = std::slice::from_ref(cand);
                    let kern = CoExecKernel::new(single, fb, w, 0, BlockProfile::idle());
                    match launch(&kern, ctx.arch, &LaunchConfig::default()) {
                        Ok(report) => {
                            let observed = (report.latency_us / MEASUREMENT_GRANULARITY_US).round()
                                * MEASUREMENT_GRANULARITY_US;
                            scores[i] += observed;
                        }
                        Err(_) => scores[i] += f64::MAX / 1e6, // unlaunchable
                    }
                }
            }
            argmin(&scores)
        })
        .collect();

    let schedules = choices
        .iter()
        .enumerate()
        .map(|(f, &c)| ctx.candidates[f].candidates[c])
        .collect();
    TuneResult {
        schedules,
        choices,
        occupancy: None,
        global_latencies: Vec::new(),
        evaluations,
        // The straw man never measures its fused kernel — that blindness
        // is its defining flaw — so there is no honest latency to record.
        mean_latency_us: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use crate::{tune_separate_combine, TunerConfig};
    use recflex_data::{Dataset, ModelPreset};
    use recflex_sim::GpuArch;

    #[test]
    fn strawman_returns_valid_choices_without_occupancy() {
        let m = ModelPreset::A.scaled(0.01);
        let ds = Dataset::synthesize(&m, 2, 48, 5);
        let arch = GpuArch::v100();
        let r = tune_separate_combine(&m, &ds, &arch, &TunerConfig::fast());
        assert_eq!(r.schedules.len(), m.features.len());
        assert!(
            r.occupancy.is_none(),
            "straw man does not control occupancy"
        );
        assert!(r.global_latencies.is_empty());
    }

    #[test]
    fn strawman_deterministic() {
        let m = ModelPreset::C.scaled(0.008);
        let ds = Dataset::synthesize(&m, 2, 32, 9);
        let arch = GpuArch::v100();
        let a = tune_separate_combine(&m, &ds, &arch, &TunerConfig::fast());
        let b = tune_separate_combine(&m, &ds, &arch, &TunerConfig::fast());
        assert_eq!(a.choices, b.choices);
    }
}
