//! Tuning-cost accounting (paper Section VI-E, "Compile and tuning
//! overhead").
//!
//! The paper argues the tuner runs in `O(F·K + K)` compiled kernels and
//! finishes "in several hours" on eight GPUs — acceptable because a tuned
//! model serves for days. This module makes the cost observable: it counts
//! the kernels a tuning run would compile and the measurements it takes,
//! so the complexity claim is checkable rather than asserted.

use crate::{TunerConfig, TuningContext};

/// Cost profile of one two-stage tuning run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningCost {
    /// Features tuned (`F`).
    pub features: usize,
    /// Occupancy levels enumerated (`K`).
    pub occupancy_levels: usize,
    /// Historical batches sampled.
    pub tuning_batches: usize,
    /// Co-execution kernels compiled by the local stage (`F × K` — each
    /// fuses all of one feature's candidates, the trick that keeps the
    /// stage out of the `Π N_f` combinatorial trap).
    pub local_kernels: usize,
    /// Fused kernels compiled by the global stage (`2K`: each level's
    /// winners at controlled and natural occupancy).
    pub global_kernels: usize,
    /// Total latency measurements taken (kernels × batches).
    pub measurements: usize,
    /// Total schedule candidates across features (`Σ N_f`) — the size of
    /// the space the straw-man holistic tuner would have to exponentiate.
    pub total_candidates: usize,
}

impl TuningCost {
    /// Predict the cost of tuning `ctx` under `cfg` (exact arithmetic —
    /// the tuner's control flow is deterministic).
    pub fn estimate(ctx: &TuningContext<'_>, cfg: &TunerConfig, arch_levels: usize) -> Self {
        let features = ctx.candidates.len();
        let occupancy_levels = cfg
            .occupancy_levels
            .as_ref()
            .map(|v| v.len())
            .unwrap_or(arch_levels);
        let tuning_batches = ctx.history.len();
        let local_kernels = features * occupancy_levels;
        let global_kernels = 2 * occupancy_levels;
        TuningCost {
            features,
            occupancy_levels,
            tuning_batches,
            local_kernels,
            global_kernels,
            measurements: (local_kernels + global_kernels) * tuning_batches,
            total_candidates: ctx.candidates.iter().map(|c| c.len()).sum(),
        }
    }

    /// Kernels the straw-man *holistic* tuner (paper Section II-C,
    /// solution 2) would need: `Π N_f`, returned as log10 because the
    /// number itself does not fit in anything.
    pub fn holistic_kernels_log10(&self, candidates_per_feature: &[usize]) -> f64 {
        candidates_per_feature
            .iter()
            .map(|&n| (n.max(1) as f64).log10())
            .sum()
    }

    /// Total kernels this tuner compiles — the `O(F·K + K)` headline.
    pub fn total_kernels(&self) -> usize {
        self.local_kernels + self.global_kernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{Dataset, ModelPreset};
    use recflex_sim::GpuArch;

    #[test]
    fn cost_is_linear_in_features_and_levels() {
        let arch = GpuArch::v100();
        let cfg = TunerConfig::fast();
        let m1 = ModelPreset::A.scaled(0.01);
        let m2 = ModelPreset::A.scaled(0.02);
        let d1 = Dataset::synthesize(&m1, 2, 32, 5);
        let d2 = Dataset::synthesize(&m2, 2, 32, 5);
        let c1 = TuningCost::estimate(&TuningContext::new(&m1, &d1, &arch, &cfg), &cfg, 8);
        let c2 = TuningCost::estimate(&TuningContext::new(&m2, &d2, &arch, &cfg), &cfg, 8);
        assert_eq!(c1.local_kernels, m1.features.len() * 3);
        assert_eq!(c2.local_kernels, m2.features.len() * 3);
        assert_eq!(
            c1.global_kernels, c2.global_kernels,
            "global stage is O(K), not O(F)"
        );
        // Doubling features doubles the local stage exactly.
        assert_eq!(c2.local_kernels, 2 * c1.local_kernels);
    }

    #[test]
    fn holistic_space_is_astronomical() {
        // The paper's example: F=100 features × N=4 candidates ≈ 10^60.
        let cost = TuningCost {
            features: 100,
            occupancy_levels: 8,
            tuning_batches: 4,
            local_kernels: 800,
            global_kernels: 16,
            measurements: 3264,
            total_candidates: 400,
        };
        let log10 = cost.holistic_kernels_log10(&[4; 100]);
        assert!(
            (log10 - 60.2).abs() < 0.2,
            "4^100 ≈ 10^60.2, got 10^{log10}"
        );
        assert!(
            cost.total_kernels() < 1000,
            "vs O(F·K+K) = {}",
            cost.total_kernels()
        );
    }

    #[test]
    fn default_levels_fall_back_to_arch() {
        let arch = GpuArch::v100();
        let cfg = TunerConfig {
            occupancy_levels: None,
            ..TunerConfig::fast()
        };
        let m = ModelPreset::A.scaled(0.005);
        let d = Dataset::synthesize(&m, 2, 32, 5);
        let ctx = TuningContext::new(&m, &d, &arch, &cfg);
        let c = TuningCost::estimate(&ctx, &cfg, arch.occupancy_levels().len());
        assert_eq!(c.occupancy_levels, arch.occupancy_levels().len());
    }
}
