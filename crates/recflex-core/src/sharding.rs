//! Multi-GPU table sharding (paper Section VII, "Larger model sizes").
//!
//! When embedding tables exceed one GPU's memory, the paper proposes
//! placing tables on multiple GPUs "through heuristics" and then using
//! RecFlex to optimize the embedding operations *on each GPU*. This module
//! implements that composition: a greedy longest-processing-time placement
//! balances the expected per-batch embedding traffic across devices, each
//! shard is tuned independently with the two-stage tuner, and a request is
//! served by launching every shard's fused kernel concurrently (latency =
//! slowest shard + a fixed all-gather of the pooled outputs).

use rayon::prelude::*;
use recflex_baselines::BackendError;
use recflex_data::{Batch, Dataset, FeatureSpec, ModelConfig};
use recflex_embedding::FusedOutput;
use recflex_sim::GpuArch;
use recflex_tuner::TunerConfig;

use crate::engine::RecFlexEngine;

/// Assignment of model features to devices.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// `feature_idx → device` in model order.
    pub device_of: Vec<usize>,
    /// Number of devices.
    pub num_devices: usize,
}

impl Placement {
    /// Greedy LPT placement: features sorted by expected per-batch bytes,
    /// each assigned to the currently lightest device.
    pub fn balance(model: &ModelConfig, num_devices: usize) -> Self {
        assert!(num_devices >= 1);
        let mut order: Vec<usize> = (0..model.features.len()).collect();
        let weight = |f: &FeatureSpec| f.expected_lookups_per_sample() * f.row_bytes() as f64;
        order.sort_by(|&a, &b| weight(&model.features[b]).total_cmp(&weight(&model.features[a])));
        let mut load = vec![0.0f64; num_devices];
        let mut device_of = vec![0usize; model.features.len()];
        for f in order {
            let dev = load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("num_devices >= 1");
            device_of[f] = dev;
            load[dev] += weight(&model.features[f]).max(1.0);
        }
        Placement {
            device_of,
            num_devices,
        }
    }

    /// Feature indices on one device, in model order.
    pub fn features_on(&self, device: usize) -> Vec<usize> {
        self.device_of
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == device)
            .map(|(f, _)| f)
            .collect()
    }

    /// Load imbalance: max device weight / mean device weight under the
    /// given per-feature weights.
    pub fn imbalance(&self, weights: &[f64]) -> f64 {
        let mut load = vec![0.0f64; self.num_devices];
        for (f, &d) in self.device_of.iter().enumerate() {
            load[d] += weights[f];
        }
        let max = load.iter().copied().fold(0.0f64, f64::max);
        let mean = load.iter().sum::<f64>() / self.num_devices as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// A model sharded over several simulated GPUs, each with its own tuned
/// RecFlex engine.
pub struct ShardedEngine {
    /// The placement in force.
    pub placement: Placement,
    /// Per-device engines over the per-device sub-models.
    pub shards: Vec<RecFlexEngine>,
    /// The original model (for output layout).
    pub model: ModelConfig,
}

/// Fixed cost of gathering the pooled outputs to one device over NVLink,
/// in microseconds per megabyte.
const ALLGATHER_US_PER_MB: f64 = 5.0;

impl ShardedEngine {
    /// Shard `model` over `num_devices` simulated `arch` GPUs and tune
    /// each shard on its slice of `dataset`.
    pub fn tune(
        model: &ModelConfig,
        dataset: &Dataset,
        arch: &GpuArch,
        cfg: &TunerConfig,
        num_devices: usize,
    ) -> Self {
        let placement = Placement::balance(model, num_devices);
        let shards: Vec<RecFlexEngine> = (0..num_devices)
            .into_par_iter()
            .map(|dev| {
                let feats = placement.features_on(dev);
                let sub_model = ModelConfig {
                    name: format!("{}@dev{dev}", model.name),
                    features: feats.iter().map(|&f| model.features[f].clone()).collect(),
                };
                let sub_data = project_dataset(dataset, &feats);
                RecFlexEngine::tune(&sub_model, &sub_data, arch, cfg)
            })
            .collect();
        ShardedEngine {
            placement,
            shards,
            model: model.clone(),
        }
    }

    /// Serve one batch: every shard launches concurrently; shard outputs
    /// are scattered back into the model's feature order.
    pub fn run(&self, batch: &Batch) -> Result<(FusedOutput, f64), BackendError> {
        let shard_results: Vec<(FusedOutput, f64)> = self
            .shards
            .par_iter()
            .enumerate()
            .map(|(dev, engine)| {
                let feats = self.placement.features_on(dev);
                let sub_batch = Batch {
                    batch_size: batch.batch_size,
                    features: feats.iter().map(|&f| batch.features[f].clone()).collect(),
                };
                engine
                    .run(&sub_batch)
                    .map(|(out, report)| (out, report.latency_us))
            })
            .collect::<Result<_, _>>()?;

        // Latency: slowest shard plus gathering the concatenated output.
        let slowest = shard_results.iter().map(|(_, l)| *l).fold(0.0f64, f64::max);
        let out_mb = self.model.concat_dim() as f64 * batch.batch_size as f64 * 4.0 / 1e6;
        let latency = slowest + out_mb * ALLGATHER_US_PER_MB;

        // Scatter shard outputs into model feature order.
        let mut out = FusedOutput::zeros(&self.model, batch.batch_size);
        {
            let parts = out.split_features_mut();
            let mut parts: Vec<Option<&mut [f32]>> = parts.into_iter().map(Some).collect();
            for (dev, (shard_out, _)) in shard_results.iter().enumerate() {
                for (local, &global) in self.placement.features_on(dev).iter().enumerate() {
                    let dst = parts[global].take().expect("each feature scattered once");
                    dst.copy_from_slice(shard_out.feature(local));
                }
            }
        }
        Ok((out, latency))
    }
}

/// Project a dataset onto a feature subset (per-device tuning data).
fn project_dataset(dataset: &Dataset, feats: &[usize]) -> Dataset {
    let batches: Vec<Batch> = dataset
        .batches()
        .iter()
        .map(|b| Batch {
            batch_size: b.batch_size,
            features: feats.iter().map(|&f| b.features[f].clone()).collect(),
        })
        .collect();
    Dataset::from_batches(batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::ModelPreset;
    use recflex_embedding::{reference_model_output, TableSet};

    #[test]
    fn placement_covers_all_features_once() {
        let m = ModelPreset::A.scaled(0.02);
        let p = Placement::balance(&m, 4);
        assert_eq!(p.device_of.len(), m.features.len());
        let total: usize = (0..4).map(|d| p.features_on(d).len()).sum();
        assert_eq!(total, m.features.len());
    }

    #[test]
    fn lpt_balances_traffic() {
        let m = ModelPreset::C.scaled(0.05);
        let p = Placement::balance(&m, 4);
        let weights: Vec<f64> = m
            .features
            .iter()
            .map(|f| f.expected_lookups_per_sample() * f.row_bytes() as f64)
            .collect();
        assert!(
            p.imbalance(&weights) < 1.3,
            "LPT imbalance {}",
            p.imbalance(&weights)
        );
        // A single device is trivially balanced.
        assert_eq!(Placement::balance(&m, 1).imbalance(&weights), 1.0);
    }

    #[test]
    fn sharded_output_matches_reference() {
        let m = ModelPreset::A.scaled(0.015);
        let ds = Dataset::synthesize(&m, 2, 48, 5);
        let arch = GpuArch::v100();
        let sharded = ShardedEngine::tune(&m, &ds, &arch, &TunerConfig::fast(), 3);
        let batch = Batch::generate(&m, 48, 77);
        let (out, latency) = sharded.run(&batch).unwrap();

        // Note: the shards' tables are seeded from the *sub-model* names,
        // so compare against a reference built from the same tables.
        assert!(latency > 0.0);
        assert_eq!(out.num_features(), m.features.len());
        for dev in 0..3 {
            let feats = sharded.placement.features_on(dev);
            let sub_model = &sharded.shards[dev].model;
            let tables = TableSet::for_model(sub_model);
            let sub_batch = Batch {
                batch_size: batch.batch_size,
                features: feats.iter().map(|&f| batch.features[f].clone()).collect(),
            };
            let golden = reference_model_output(sub_model, &tables, &sub_batch);
            for (local, &global) in feats.iter().enumerate() {
                assert_eq!(
                    out.feature(global),
                    golden.feature(local),
                    "feature {global}"
                );
            }
        }
    }

    #[test]
    fn more_devices_cut_latency() {
        let m = ModelPreset::C.scaled(0.03);
        let ds = Dataset::synthesize(&m, 2, 96, 5);
        let arch = GpuArch::v100();
        let batch = Batch::generate(&m, 96, 9);
        let one = ShardedEngine::tune(&m, &ds, &arch, &TunerConfig::fast(), 1);
        let four = ShardedEngine::tune(&m, &ds, &arch, &TunerConfig::fast(), 4);
        let (_, l1) = one.run(&batch).unwrap();
        let (_, l4) = four.run(&batch).unwrap();
        assert!(l4 < l1, "4 devices {l4} vs 1 device {l1}");
    }
}
