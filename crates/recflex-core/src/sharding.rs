//! Multi-GPU table sharding (paper Section VII, "Larger model sizes").
//!
//! When embedding tables exceed one GPU's memory, the paper proposes
//! placing tables on multiple GPUs "through heuristics" and then using
//! RecFlex to optimize the embedding operations *on each GPU*. This module
//! implements that composition over the shared [`Placement`] partition
//! from the data layer: per-feature device-time estimates measured on the
//! tuning history drive an LPT placement ([`Placement::balance_by_cost`]),
//! each shard is tuned independently with the two-stage tuner, and a
//! request is served by launching every shard's fused kernel concurrently
//! (latency = slowest shard + a ring all-gather of the pooled outputs over
//! a configurable [`Interconnect`]).

use rayon::prelude::*;
use recflex_baselines::BackendError;
use recflex_data::{Batch, Dataset, ModelConfig};
use recflex_embedding::{analyze_batch, FusedOutput};
use recflex_sim::{GpuArch, Interconnect};
use recflex_tuner::TunerConfig;

use crate::engine::RecFlexEngine;

pub use recflex_data::Placement;

/// Per-feature device-time estimates (µs per tuning batch), measured on
/// the historical dataset rather than read off the feature specs.
///
/// The embedding stage is bandwidth-bound, so a feature's cost is its
/// memory time under the architecture's roofline: first-touch rows stream
/// from DRAM, re-referenced rows hit L2, and the pooled output writes
/// back. Unlike the spec-derived expected-bytes weight this reflects what
/// the traffic *actually* does — realized pooling factors, coverage, and
/// the hot-row reuse that makes a skewed feature far cheaper than its raw
/// lookup count suggests.
pub fn feature_cost_estimates(model: &ModelConfig, dataset: &Dataset, arch: &GpuArch) -> Vec<f64> {
    let mut costs = vec![0.0f64; model.features.len()];
    let batches = dataset.batches();
    if batches.is_empty() {
        return costs;
    }
    for batch in batches {
        for w in analyze_batch(model, batch) {
            let dram_bytes = (w.unique_bytes() + w.bytes_written()) as f64;
            let l2_bytes = (w.bytes_read() - w.unique_bytes()) as f64;
            let us = dram_bytes / (arch.dram_bw_gbps * 1e9) * 1e6
                + l2_bytes / (arch.l2_bw_gbps * 1e9) * 1e6;
            costs[w.feature_idx] += us;
        }
    }
    for c in &mut costs {
        *c /= batches.len() as f64;
    }
    costs
}

/// A model sharded over several simulated GPUs, each with its own tuned
/// RecFlex engine.
pub struct ShardedEngine {
    /// The placement in force.
    pub placement: Placement,
    /// Per-device engines over the per-device sub-models.
    pub shards: Vec<RecFlexEngine>,
    /// The original model (for output layout).
    pub model: ModelConfig,
    /// The link the pooled outputs are gathered over.
    pub interconnect: Interconnect,
}

impl ShardedEngine {
    /// Shard `model` over `num_devices` simulated `arch` GPUs using the
    /// cost-model-driven placement and tune each shard on its slice of
    /// `dataset`. Gathers are accounted over NVLink.
    pub fn tune(
        model: &ModelConfig,
        dataset: &Dataset,
        arch: &GpuArch,
        cfg: &TunerConfig,
        num_devices: usize,
    ) -> Self {
        let costs = feature_cost_estimates(model, dataset, arch);
        let placement = Placement::balance_by_cost(num_devices, &costs);
        Self::tune_with_placement(model, dataset, arch, cfg, placement, Interconnect::nvlink())
    }

    /// Shard under an explicit placement and interconnect — the entry the
    /// placement-policy sweeps use.
    pub fn tune_with_placement(
        model: &ModelConfig,
        dataset: &Dataset,
        arch: &GpuArch,
        cfg: &TunerConfig,
        placement: Placement,
        interconnect: Interconnect,
    ) -> Self {
        assert_eq!(placement.device_of.len(), model.features.len());
        let shards: Vec<RecFlexEngine> = (0..placement.num_devices)
            .into_par_iter()
            .map(|dev| {
                let sub_model = placement.sub_model(model, dev);
                let sub_data = project_dataset(dataset, &placement, dev);
                RecFlexEngine::tune(&sub_model, &sub_data, arch, cfg)
            })
            .collect();
        ShardedEngine {
            placement,
            shards,
            model: model.clone(),
            interconnect,
        }
    }

    /// Serve one batch: every shard launches concurrently; shard outputs
    /// are scattered back into the model's feature order.
    pub fn run(&self, batch: &Batch) -> Result<(FusedOutput, f64), BackendError> {
        let shard_results: Vec<(FusedOutput, f64)> = self
            .shards
            .par_iter()
            .enumerate()
            .map(|(dev, engine)| {
                let sub_batch = self.placement.project_batch(batch, dev);
                engine
                    .run(&sub_batch)
                    .map(|(out, report)| (out, report.latency_us))
            })
            .collect::<Result<_, _>>()?;

        // Latency: slowest shard plus the all-gather of the pooled output.
        let slowest = shard_results.iter().map(|(_, l)| *l).fold(0.0f64, f64::max);
        let out_bytes = self.model.concat_dim() as u64 * batch.batch_size as u64 * 4;
        let latency = slowest
            + self
                .interconnect
                .all_gather_us(out_bytes, self.placement.num_devices);

        // Scatter shard outputs into model feature order.
        let mut out = FusedOutput::zeros(&self.model, batch.batch_size);
        {
            let parts = out.split_features_mut();
            let mut parts: Vec<Option<&mut [f32]>> = parts.into_iter().map(Some).collect();
            for (dev, (shard_out, _)) in shard_results.iter().enumerate() {
                for (local, &global) in self.placement.features_on(dev).iter().enumerate() {
                    let dst = parts[global].take().expect("each feature scattered once");
                    dst.copy_from_slice(shard_out.feature(local));
                }
            }
        }
        Ok((out, latency))
    }
}

/// Project a dataset onto one device's features (per-device tuning data).
fn project_dataset(dataset: &Dataset, placement: &Placement, device: usize) -> Dataset {
    let batches: Vec<Batch> = dataset
        .batches()
        .iter()
        .map(|b| placement.project_batch(b, device))
        .collect();
    Dataset::from_batches(batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::ModelPreset;
    use recflex_embedding::{reference_model_output, TableSet};

    #[test]
    fn placement_covers_all_features_once() {
        let m = ModelPreset::A.scaled(0.02);
        let p = Placement::balance(&m, 4);
        assert_eq!(p.device_of.len(), m.features.len());
        let total: usize = (0..4).map(|d| p.features_on(d).len()).sum();
        assert_eq!(total, m.features.len());
    }

    #[test]
    fn lpt_balances_traffic() {
        let m = ModelPreset::C.scaled(0.05);
        let p = Placement::balance(&m, 4);
        let weights: Vec<f64> = m
            .features
            .iter()
            .map(|f| f.expected_lookups_per_sample() * f.row_bytes() as f64)
            .collect();
        assert!(
            p.imbalance(&weights) < 1.3,
            "LPT imbalance {}",
            p.imbalance(&weights)
        );
        // A single device is trivially balanced.
        assert_eq!(Placement::balance(&m, 1).imbalance(&weights), 1.0);
    }

    #[test]
    fn cost_driven_placement_beats_round_robin_on_measured_costs() {
        let m = ModelPreset::C.scaled(0.05);
        let ds = Dataset::synthesize(&m, 2, 64, 5);
        let arch = GpuArch::v100();
        let costs = feature_cost_estimates(&m, &ds, &arch);
        assert_eq!(costs.len(), m.features.len());
        assert!(costs.iter().all(|&c| c >= 0.0));
        assert!(costs.iter().sum::<f64>() > 0.0, "history implies work");
        let by_cost = Placement::balance_by_cost(4, &costs);
        let naive = Placement::round_robin(&m, 4);
        assert!(
            by_cost.imbalance(&costs) <= naive.imbalance(&costs) + 1e-9,
            "LPT {} vs round-robin {}",
            by_cost.imbalance(&costs),
            naive.imbalance(&costs)
        );
    }

    #[test]
    fn sharded_output_matches_reference() {
        let m = ModelPreset::A.scaled(0.015);
        let ds = Dataset::synthesize(&m, 2, 48, 5);
        let arch = GpuArch::v100();
        let sharded = ShardedEngine::tune(&m, &ds, &arch, &TunerConfig::fast(), 3);
        let batch = Batch::generate(&m, 48, 77);
        let (out, latency) = sharded.run(&batch).unwrap();

        // Note: the shards' tables are seeded from the *sub-model* names,
        // so compare against a reference built from the same tables.
        assert!(latency > 0.0);
        assert_eq!(out.num_features(), m.features.len());
        for dev in 0..3 {
            let feats = sharded.placement.features_on(dev);
            let sub_model = &sharded.shards[dev].model;
            let tables = TableSet::for_model(sub_model);
            let sub_batch = sharded.placement.project_batch(&batch, dev);
            let golden = reference_model_output(sub_model, &tables, &sub_batch);
            for (local, &global) in feats.iter().enumerate() {
                assert_eq!(
                    out.feature(global),
                    golden.feature(local),
                    "feature {global}"
                );
            }
        }
    }

    #[test]
    fn more_devices_cut_latency() {
        let m = ModelPreset::C.scaled(0.03);
        let ds = Dataset::synthesize(&m, 2, 96, 5);
        let arch = GpuArch::v100();
        let batch = Batch::generate(&m, 96, 9);
        let one = ShardedEngine::tune(&m, &ds, &arch, &TunerConfig::fast(), 1);
        let four = ShardedEngine::tune(&m, &ds, &arch, &TunerConfig::fast(), 4);
        let (_, l1) = one.run(&batch).unwrap();
        let (_, l4) = four.run(&batch).unwrap();
        assert!(l4 < l1, "4 devices {l4} vs 1 device {l1}");
    }

    #[test]
    fn single_device_gather_is_free_and_matches_unsharded() {
        let m = ModelPreset::A.scaled(0.01);
        let ds = Dataset::synthesize(&m, 2, 32, 3);
        let arch = GpuArch::v100();
        let sharded = ShardedEngine::tune(&m, &ds, &arch, &TunerConfig::fast(), 1);
        let plain = RecFlexEngine::tune(&m, &ds, &arch, &TunerConfig::fast());
        let batch = Batch::generate(&m, 32, 11);
        let (_, sharded_lat) = sharded.run(&batch).unwrap();
        let (_, plain_report) = plain.run(&batch).unwrap();
        assert_eq!(
            sharded_lat, plain_report.latency_us,
            "1-shard latency must equal the unsharded engine bit-for-bit"
        );
    }
}
