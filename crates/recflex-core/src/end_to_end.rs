//! End-to-end model: embedding stage + evaluation MLP (paper Figure 10).
//!
//! The DNN stage is identical for every backend — RecFlex leaves it alone —
//! so end-to-end speedups are the embedding speedups diluted by the shared
//! MLP time, exactly the effect the paper reports (kernel 2.64× → e2e
//! 1.85× vs TorchRec).

use recflex_baselines::{Backend, BackendError};
use recflex_data::{Batch, ModelConfig};
use recflex_dnn::Mlp;
use recflex_embedding::TableSet;
use recflex_sim::GpuArch;

/// An embedding backend with the paper's MLP on top.
pub struct EndToEndModel<'a> {
    /// The embedding execution strategy under test.
    pub backend: &'a dyn Backend,
    /// The model definition.
    pub model: &'a ModelConfig,
    /// The embedding tables.
    pub tables: &'a TableSet,
    /// The dense stack (1024/256/128 hidden units in the paper config).
    pub mlp: Mlp,
}

/// Timing breakdown of one end-to-end run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E2eTiming {
    /// Embedding-stage latency (backend-specific), µs.
    pub embedding_us: f64,
    /// DNN-stage latency (identical across backends), µs.
    pub dnn_us: f64,
}

impl E2eTiming {
    /// Total latency.
    pub fn total_us(&self) -> f64 {
        self.embedding_us + self.dnn_us
    }
}

impl<'a> EndToEndModel<'a> {
    /// Build with the paper's MLP configuration.
    pub fn paper_config(
        backend: &'a dyn Backend,
        model: &'a ModelConfig,
        tables: &'a TableSet,
    ) -> Self {
        EndToEndModel {
            backend,
            model,
            tables,
            mlp: Mlp::paper_config(model.concat_dim()),
        }
    }

    /// Simulated end-to-end latency of one batch.
    pub fn latency(&self, batch: &Batch, arch: &GpuArch) -> Result<E2eTiming, BackendError> {
        let run = self.backend.run(self.model, self.tables, batch, arch)?;
        let dnn_us = self.mlp.latency_us(batch.batch_size, arch);
        Ok(E2eTiming {
            embedding_us: run.latency_us,
            dnn_us,
        })
    }

    /// Functional prediction: pooled embeddings → concat → MLP → one score
    /// per sample. Intended for small models (tests, examples).
    pub fn predict(&self, batch: &Batch, arch: &GpuArch) -> Result<Vec<f32>, BackendError> {
        let run = self.backend.run(self.model, self.tables, batch, arch)?;
        let batch_n = batch.batch_size as usize;
        let width = self.model.concat_dim() as usize;
        let mut x = Vec::with_capacity(batch_n * width);
        for s in 0..batch.batch_size {
            x.extend_from_slice(&run.output.concat_sample(s));
        }
        Ok(self.mlp.forward(&x, batch_n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RecFlexEngine;
    use recflex_baselines::TorchRecBackend;
    use recflex_data::{Dataset, ModelPreset};
    use recflex_tuner::TunerConfig;

    #[test]
    fn e2e_timing_includes_both_stages() {
        let m = ModelPreset::A.scaled(0.01);
        let tables = TableSet::for_model(&m);
        let arch = GpuArch::v100();
        let be = TorchRecBackend::compile(&m);
        let e2e = EndToEndModel::paper_config(&be, &m, &tables);
        let t = e2e.latency(&Batch::generate(&m, 32, 3), &arch).unwrap();
        assert!(t.embedding_us > 0.0 && t.dnn_us > 0.0);
        assert!((t.total_us() - t.embedding_us - t.dnn_us).abs() < 1e-9);
    }

    #[test]
    fn predictions_identical_across_backends() {
        // All backends compute the same embeddings bit-for-bit, and the MLP
        // is shared — so predictions must agree exactly.
        let m = ModelPreset::A.scaled(0.01);
        let tables = TableSet::for_model(&m);
        let ds = Dataset::synthesize(&m, 2, 32, 5);
        let arch = GpuArch::v100();
        let batch = Batch::generate(&m, 16, 77);

        let engine = RecFlexEngine::tune(&m, &ds, &arch, &TunerConfig::fast());
        let torchrec = TorchRecBackend::compile(&m);

        let p1 = EndToEndModel::paper_config(&engine, &m, &tables)
            .predict(&batch, &arch)
            .unwrap();
        let p2 = EndToEndModel::paper_config(&torchrec, &m, &tables)
            .predict(&batch, &arch)
            .unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 16);
    }

    #[test]
    fn e2e_speedup_smaller_than_kernel_speedup() {
        // Figure 10's dilution effect: the shared DNN time compresses the
        // end-to-end ratio relative to the kernel ratio.
        let m = ModelPreset::A.scaled(0.02);
        let tables = TableSet::for_model(&m);
        let ds = Dataset::synthesize(&m, 2, 64, 5);
        let arch = GpuArch::v100();
        let batch = Batch::generate(&m, 64, 9);

        let engine = RecFlexEngine::tune(&m, &ds, &arch, &TunerConfig::fast());
        let torchrec = TorchRecBackend::compile(&m);
        let ours = EndToEndModel::paper_config(&engine, &m, &tables);
        let theirs = EndToEndModel::paper_config(&torchrec, &m, &tables);

        let to = ours.latency(&batch, &arch).unwrap();
        let tt = theirs.latency(&batch, &arch).unwrap();
        let kernel_speedup = tt.embedding_us / to.embedding_us;
        let e2e_speedup = tt.total_us() / to.total_us();
        assert!(kernel_speedup > 1.0, "RecFlex must win the kernel race");
        assert!(
            e2e_speedup < kernel_speedup,
            "e2e {e2e_speedup} must be diluted vs kernel {kernel_speedup}"
        );
        assert!(e2e_speedup > 1.0);
    }
}
