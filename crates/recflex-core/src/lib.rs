//! # recflex-core — the RecFlex engine
//!
//! Ties the system together the way the paper's Figure 4 does: the user
//! supplies a model (feature specs + schedule candidates via the registry)
//! and historical input data; the engine tunes with the interference-aware
//! two-stage tuner, compiles the fused kernel with the heterogeneous
//! schedule fusion compiler, and serves batches with runtime thread
//! mapping.
//!
//! [`RecFlexEngine`] implements the [`recflex_baselines::Backend`] trait, so it slots directly
//! into the Figure 9/10 comparison harnesses next to TensorFlow, RECom,
//! HugeCTR and TorchRec. [`EndToEndModel`] appends the evaluation MLP for
//! the end-to-end experiments.

pub mod end_to_end;
pub mod engine;
pub mod serving;
pub mod sharding;

pub use end_to_end::EndToEndModel;
pub use engine::{RecFlexEngine, VaultTuneReport, DEFAULT_WARM_BUDGET_PER_FEATURE};
pub use serving::{ServingSimulator, ServingStats};
pub use sharding::{feature_cost_estimates, Placement, ShardedEngine};
