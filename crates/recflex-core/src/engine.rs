//! The tuned, compiled, servable RecFlex engine.

use recflex_baselines::{Backend, BackendError, BackendRun};
use recflex_compiler::{DispatchMode, FusedKernelObject, FusedSpec};
use recflex_data::{Batch, Dataset, ModelConfig};
use recflex_embedding::{FusedOutput, TableSet};
use recflex_schedules::store::{
    distribution_summary, ProfileKey, ProfileVault, ScheduleProfile, SCHEMA_VERSION,
};
use recflex_schedules::Vfs;
use recflex_sim::{launch, GpuArch, LaunchReport};
use recflex_tuner::{resume_from_profile, tune_two_stage, TuneResult, TunerConfig};

/// Default nearest-profile budget for [`RecFlexEngine::tune_with_vault`],
/// *per feature*: a stored traffic summary may drift this many
/// [`recflex_schedules::store::SUMMARY_QUANTUM`]-units (i.e. 4 lookups per
/// sample) per feature on average and still seed a warm start. Multiply by
/// the model's feature count for the absolute L1 budget.
pub const DEFAULT_WARM_BUDGET_PER_FEATURE: u64 = 32;

/// How one vault-backed tuning run went — surfaced into lifecycle stats
/// and fleet reports.
#[derive(Debug, Clone, PartialEq)]
pub struct VaultTuneReport {
    /// Whether the run warm-started from a stored profile.
    pub warm_started: bool,
    /// Kernel launches the tuning run cost.
    pub evaluations: usize,
    /// The sidecar the result was published under (`None` when the store
    /// rejected the publish; the engine still serves).
    pub stored_as: Option<String>,
}

/// A tuned RecFlex deployment for one model on one architecture.
pub struct RecFlexEngine {
    /// The model served.
    pub model: ModelConfig,
    /// Its embedding tables.
    pub tables: TableSet,
    /// The compiled fused kernel.
    pub object: FusedKernelObject,
    /// The architecture tuned for.
    pub arch: GpuArch,
    /// The tuning decision record.
    pub tune_result: TuneResult,
}

impl RecFlexEngine {
    /// Tune schedules on `dataset` (the recent historical inputs,
    /// Section IV-A3) and compile the fused kernel.
    pub fn tune(model: &ModelConfig, dataset: &Dataset, arch: &GpuArch, cfg: &TunerConfig) -> Self {
        let tune_result = tune_two_stage(model, dataset, arch, cfg);
        Self::from_tune_result(model, arch, tune_result)
    }

    /// Build an engine from a previously computed tuning decision.
    pub fn from_tune_result(model: &ModelConfig, arch: &GpuArch, tune_result: TuneResult) -> Self {
        let mut spec = FusedSpec::new(tune_result.schedules.clone());
        spec.occupancy_target = tune_result.occupancy;
        spec.dispatch = DispatchMode::IfElse;
        let object = FusedKernelObject::compile(spec);
        RecFlexEngine {
            model: model.clone(),
            tables: TableSet::for_model(model),
            object,
            arch: arch.clone(),
            tune_result,
        }
    }

    /// Serve one batch: host-side workload analysis, runtime thread
    /// mapping, fused launch, functional execution.
    pub fn run(&self, batch: &Batch) -> Result<(FusedOutput, LaunchReport), BackendError> {
        let bound = self.object.bind(&self.model, &self.tables, batch);
        let report = launch(&bound, &self.arch, &self.object.launch_config())
            .map_err(|e| BackendError::Launch(e.to_string()))?;
        Ok((bound.execute(), report))
    }

    /// Tune through a profile vault: try to warm-start from the nearest
    /// stored profile (same model + arch, traffic summary within
    /// `warm_budget`), fall back to the cold two-stage sweep on a miss or
    /// any resume anomaly, and publish the decision back to the vault.
    ///
    /// This is the crash-safe path: a corrupt, skewed or conflicting
    /// sidecar degrades to exactly the cold result (the vault quarantines
    /// and logs it), and a failed publish leaves the engine serving —
    /// store trouble is never allowed to take tuning down.
    pub fn tune_with_vault<V: Vfs>(
        model: &ModelConfig,
        dataset: &Dataset,
        arch: &GpuArch,
        cfg: &TunerConfig,
        vault: &mut ProfileVault<V>,
        warm_budget: u64,
    ) -> (Self, VaultTuneReport) {
        let key = ProfileKey {
            model: model.name.clone(),
            arch: arch.name.clone(),
            dist_summary: distribution_summary(dataset.batches()),
        };
        let mut warm: Option<TuneResult> = None;
        if let Some(profile) = vault.lookup_nearest(&key, warm_budget) {
            match resume_from_profile(model, dataset, arch, cfg, &profile) {
                Ok(result) => warm = Some(result),
                Err(e) => vault.note(format!(
                    "resume rejected for `{}`: {e}",
                    profile.key.sidecar_name()
                )),
            }
        }
        let warm_started = warm.is_some();
        let tune_result = warm.unwrap_or_else(|| tune_two_stage(model, dataset, arch, cfg));
        let profile = ScheduleProfile {
            schema_version: SCHEMA_VERSION,
            key,
            choices: tune_result.choices.clone(),
            schedule_labels: tune_result.schedules.iter().map(|s| s.label()).collect(),
            occupancy: tune_result.occupancy,
            mean_latency_us: tune_result.mean_latency_us,
            hash: String::new(),
        };
        // Publish failures are already logged by the vault; serving wins.
        let stored_as = vault.store(&profile).ok();
        let report = VaultTuneReport {
            warm_started,
            evaluations: tune_result.evaluations,
            stored_as,
        };
        (Self::from_tune_result(model, arch, tune_result), report)
    }

    /// Re-tune on fresh historical data — the paper's periodic re-tuning
    /// against distribution shift (Section IV-A3). Returns the previous
    /// tuning decision.
    pub fn retune(&mut self, dataset: &Dataset, cfg: &TunerConfig) -> TuneResult {
        let new = tune_two_stage(&self.model, dataset, &self.arch, cfg);
        let old = std::mem::replace(&mut self.tune_result, new);
        let mut spec = FusedSpec::new(self.tune_result.schedules.clone());
        spec.occupancy_target = self.tune_result.occupancy;
        self.object = FusedKernelObject::compile(spec);
        old
    }

    /// The CUDA translation unit the deployment corresponds to (Figure 8).
    pub fn cuda_source(&self) -> String {
        self.object.cuda_source()
    }
}

impl Backend for RecFlexEngine {
    fn name(&self) -> &'static str {
        "RecFlex"
    }

    fn run(
        &self,
        model: &ModelConfig,
        tables: &TableSet,
        batch: &Batch,
        arch: &GpuArch,
    ) -> Result<BackendRun, BackendError> {
        let bound = self.object.bind(model, tables, batch);
        let report = launch(&bound, arch, &self.object.launch_config())
            .map_err(|e| BackendError::Launch(e.to_string()))?;
        Ok(BackendRun {
            output: bound.execute(),
            latency_us: report.latency_us,
            kernel_launches: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::ModelPreset;
    use recflex_embedding::reference_model_output;

    fn engine() -> (RecFlexEngine, Dataset) {
        let m = ModelPreset::A.scaled(0.01);
        let ds = Dataset::synthesize(&m, 3, 48, 5);
        let e = RecFlexEngine::tune(&m, &ds, &GpuArch::v100(), &TunerConfig::fast());
        (e, ds)
    }

    #[test]
    fn engine_serves_correct_output() {
        let (e, ds) = engine();
        let batch = &ds.batches()[2];
        let (out, report) = e.run(batch).unwrap();
        let golden = reference_model_output(&e.model, &e.tables, batch);
        assert_eq!(out.max_abs_diff(&golden), 0.0);
        assert!(report.latency_us > 0.0);
        assert!(report.occupancy.blocks_per_sm >= 1);
    }

    #[test]
    fn engine_is_a_backend() {
        let (e, ds) = engine();
        let run = Backend::run(&e, &e.model, &e.tables, &ds.batches()[0], &e.arch).unwrap();
        assert_eq!(run.kernel_launches, 1);
        assert_eq!(Backend::name(&e), "RecFlex");
    }

    #[test]
    fn retune_swaps_decision() {
        let (mut e, _) = engine();
        let fresh = Dataset::synthesize(&e.model, 2, 48, 777);
        let model = e.model.clone();
        let old = e.retune(&fresh, &TunerConfig::fast());
        assert_eq!(old.schedules.len(), model.features.len());
        assert_eq!(e.tune_result.schedules.len(), model.features.len());
        // The engine still serves correctly after the swap.
        let batch = Batch::generate(&model, 32, 9);
        let (out, _) = e.run(&batch).unwrap();
        let golden = reference_model_output(&e.model, &e.tables, &batch);
        assert_eq!(out.max_abs_diff(&golden), 0.0);
    }

    #[test]
    fn vault_warm_start_is_cheaper_with_identical_schedules() {
        use recflex_schedules::MemVfs;
        let m = ModelPreset::A.scaled(0.01);
        let ds = Dataset::synthesize(&m, 3, 48, 5);
        let arch = GpuArch::v100();
        let cfg = TunerConfig::fast();
        let mut vault = ProfileVault::new(MemVfs::new());
        let (cold_engine, cold) =
            RecFlexEngine::tune_with_vault(&m, &ds, &arch, &cfg, &mut vault, 0);
        assert!(!cold.warm_started);
        assert!(cold.stored_as.is_some());
        let (warm_engine, warm) =
            RecFlexEngine::tune_with_vault(&m, &ds, &arch, &cfg, &mut vault, 0);
        assert!(warm.warm_started, "{:?}", vault.diagnostics());
        assert!(warm.evaluations < cold.evaluations);
        assert_eq!(
            warm_engine.tune_result.choices,
            cold_engine.tune_result.choices
        );
        assert_eq!(
            warm_engine.tune_result.occupancy,
            cold_engine.tune_result.occupancy
        );
        // A warm-started engine still serves bit-correct output.
        let batch = &ds.batches()[1];
        let (out, _) = warm_engine.run(batch).unwrap();
        let golden = reference_model_output(&warm_engine.model, &warm_engine.tables, batch);
        assert_eq!(out.max_abs_diff(&golden), 0.0);
    }

    #[test]
    fn vault_corruption_degrades_to_cold_not_panic() {
        use recflex_schedules::MemVfs;
        let m = ModelPreset::A.scaled(0.01);
        let ds = Dataset::synthesize(&m, 3, 48, 5);
        let arch = GpuArch::v100();
        let cfg = TunerConfig::fast();
        let mut vault = ProfileVault::new(MemVfs::new());
        let (_, cold) = RecFlexEngine::tune_with_vault(&m, &ds, &arch, &cfg, &mut vault, 0);
        // Smash the published sidecar.
        let name = cold.stored_as.clone().unwrap();
        vault.vfs_mut().remove(&name).unwrap();
        vault.vfs_mut().plant(&name, b"{\"not\": \"a profile\"");
        let (engine, second) = RecFlexEngine::tune_with_vault(&m, &ds, &arch, &cfg, &mut vault, 0);
        assert!(!second.warm_started, "corrupt profile must not warm-start");
        assert_eq!(
            second.evaluations, cold.evaluations,
            "exactly the cold cost"
        );
        assert_eq!(vault.stats().quarantined, 1);
        let batch = &ds.batches()[0];
        let (out, _) = engine.run(batch).unwrap();
        let golden = reference_model_output(&engine.model, &engine.tables, batch);
        assert_eq!(out.max_abs_diff(&golden), 0.0);
    }

    #[test]
    fn vault_nearest_profile_seeds_shifted_traffic() {
        use recflex_schedules::MemVfs;
        let m = ModelPreset::A.scaled(0.01);
        let ds = Dataset::synthesize(&m, 3, 48, 5);
        // Same model, differently seeded traffic: summaries differ a
        // little, so exact lookup misses but nearest within a budget hits.
        let shifted = Dataset::synthesize(&m, 3, 48, 77);
        let arch = GpuArch::v100();
        let cfg = TunerConfig::fast();
        let mut vault = ProfileVault::new(MemVfs::new());
        let (_, cold) = RecFlexEngine::tune_with_vault(&m, &ds, &arch, &cfg, &mut vault, 0);
        let budget = DEFAULT_WARM_BUDGET_PER_FEATURE * m.features.len() as u64;
        let (_, warm) =
            RecFlexEngine::tune_with_vault(&m, &shifted, &arch, &cfg, &mut vault, budget);
        assert!(
            warm.warm_started,
            "nearest lookup within budget must seed the retune: {:?}",
            vault.diagnostics()
        );
        assert!(warm.evaluations < cold.evaluations);
    }

    #[test]
    fn cuda_source_reflects_tuning() {
        let (e, _) = engine();
        let src = e.cuda_source();
        assert!(src.contains("FusedKernel"));
        assert!(src.contains(&format!(
            "__launch_bounds__({}",
            e.object.resources.threads_per_block
        )));
    }

    #[test]
    fn beats_every_applicable_baseline_on_heterogeneous_model() {
        // The paper's headline claim, on a scaled-down model A.
        let m = ModelPreset::A.scaled(0.02);
        let ds = Dataset::synthesize(&m, 3, 64, 5);
        let arch = GpuArch::v100();
        let engine = RecFlexEngine::tune(&m, &ds, &arch, &TunerConfig::fast());
        let tables = TableSet::for_model(&m);
        let batch = Batch::generate(&m, 64, 99);

        let ours = Backend::run(&engine, &m, &tables, &batch, &arch)
            .unwrap()
            .latency_us;
        let torchrec = recflex_baselines::TorchRecBackend::compile(&m)
            .run(&m, &tables, &batch, &arch)
            .unwrap()
            .latency_us;
        let recom = recflex_baselines::RecomBackend::compile(&m, &ds)
            .run(&m, &tables, &batch, &arch)
            .unwrap()
            .latency_us;
        let tf = recflex_baselines::TensorFlowBackend
            .run(&m, &tables, &batch, &arch)
            .unwrap()
            .latency_us;
        assert!(ours < torchrec, "RecFlex {ours} vs TorchRec {torchrec}");
        assert!(ours < recom, "RecFlex {ours} vs RECom {recom}");
        assert!(ours < tf, "RecFlex {ours} vs TensorFlow {tf}");
    }
}
