//! Online-serving simulation: batching, splitting and tail latency.
//!
//! The paper's evaluation context is inference serving (Section VI-D):
//! "it is common for industrial serving systems to split batches exceeding
//! a specific threshold", while systems like DeepRecSys dispatch unsplit
//! long-tail requests. This module provides that serving layer over any
//! embedding backend so the long-tail and thread-mapping experiments run
//! in their natural habitat, and so a downstream user gets a ready-made
//! request loop with latency statistics.

use recflex_baselines::{Backend, BackendError};
use recflex_data::{Batch, FeatureBatch, ModelConfig};
use recflex_embedding::TableSet;
use recflex_sim::GpuArch;

/// Latency statistics over a served request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingStats {
    /// Per-request latencies, µs, in arrival order.
    pub request_latencies: Vec<f64>,
    /// Kernel launches issued.
    pub kernel_launches: u32,
}

impl ServingStats {
    /// Mean request latency.
    pub fn mean_us(&self) -> f64 {
        if self.request_latencies.is_empty() {
            return 0.0;
        }
        self.request_latencies.iter().sum::<f64>() / self.request_latencies.len() as f64
    }

    /// Latency percentile (`q` in `[0, 1]`), nearest-rank.
    pub fn percentile_us(&self, q: f64) -> f64 {
        if self.request_latencies.is_empty() {
            return 0.0;
        }
        let mut v = self.request_latencies.clone();
        v.sort_by(f64::total_cmp);
        let idx = ((v.len() as f64 * q).ceil() as usize).clamp(1, v.len()) - 1;
        v[idx]
    }
}

/// A serving front-end over one embedding backend.
pub struct ServingSimulator<'a> {
    /// The backend under test.
    pub backend: &'a dyn Backend,
    /// The model served.
    pub model: &'a ModelConfig,
    /// Its tables.
    pub tables: &'a TableSet,
    /// The simulated device.
    pub arch: GpuArch,
    /// Requests above this many samples are split into chunks of at most
    /// this size (the industrial practice of Section VI-D). `None`
    /// forwards requests unsplit, DeepRecSys-style.
    pub max_batch: Option<u32>,
}

impl ServingSimulator<'_> {
    /// Serve a request stream; each request is processed (split if
    /// configured) and its chunks run sequentially on the device.
    pub fn serve(&self, requests: &[Batch]) -> Result<ServingStats, BackendError> {
        let mut latencies = Vec::with_capacity(requests.len());
        let mut launches = 0u32;
        for req in requests {
            let chunks = match self.max_batch {
                Some(cap) if req.batch_size > cap => split_batch(req, cap),
                _ => vec![req.clone()],
            };
            let mut total = 0.0f64;
            for chunk in &chunks {
                let run = self.backend.run(self.model, self.tables, chunk, &self.arch)?;
                total += run.latency_us;
                launches += run.kernel_launches;
            }
            latencies.push(total);
        }
        Ok(ServingStats { request_latencies: latencies, kernel_launches: launches })
    }
}

/// Split a batch into chunks of at most `cap` samples, preserving sample
/// order and CSR validity.
pub fn split_batch(batch: &Batch, cap: u32) -> Vec<Batch> {
    assert!(cap >= 1);
    let n = batch.batch_size;
    let mut out = Vec::with_capacity(n.div_ceil(cap) as usize);
    let mut start = 0u32;
    while start < n {
        let end = (start + cap).min(n);
        let features = batch
            .features
            .iter()
            .map(|fb| slice_csr(fb, start, end))
            .collect();
        out.push(Batch { batch_size: end - start, features });
        start = end;
    }
    out
}

fn slice_csr(fb: &FeatureBatch, start: u32, end: u32) -> FeatureBatch {
    let lo = fb.offsets[start as usize];
    let hi = fb.offsets[end as usize];
    let offsets = fb.offsets[start as usize..=end as usize]
        .iter()
        .map(|&o| o - lo)
        .collect();
    let indices = fb.indices[lo as usize..hi as usize].to_vec();
    FeatureBatch { offsets, indices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RecFlexEngine;
    use recflex_data::{Dataset, ModelPreset};
    use recflex_embedding::reference_pooled;
    use recflex_tuner::TunerConfig;

    fn setup() -> (ModelConfig, TableSet, RecFlexEngine) {
        let m = ModelPreset::A.scaled(0.01);
        let t = TableSet::for_model(&m);
        let ds = Dataset::synthesize(&m, 2, 64, 5);
        let e = RecFlexEngine::tune(&m, &ds, &GpuArch::v100(), &TunerConfig::fast());
        (m, t, e)
    }

    #[test]
    fn split_preserves_csr_semantics() {
        let m = ModelPreset::C.scaled(0.01);
        let batch = Batch::generate(&m, 100, 7);
        let chunks = split_batch(&batch, 32);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().map(|c| c.batch_size).sum::<u32>(), 100);
        for c in &chunks {
            c.validate(&m).unwrap();
        }
        // Lookups are conserved and in order.
        let total: u32 = chunks.iter().map(|c| c.features[0].total_lookups()).sum();
        assert_eq!(total, batch.features[0].total_lookups());
        // Per-sample pooling matches across the split boundary.
        let tables = TableSet::for_model(&m);
        let dim = m.features[0].emb_dim as usize;
        let mut whole = vec![0.0f32; 100 * dim];
        reference_pooled(tables.table(0), &batch.features[0], &mut whole);
        let mut stitched = Vec::new();
        for c in &chunks {
            let mut part = vec![0.0f32; c.batch_size as usize * dim];
            reference_pooled(tables.table(0), &c.features[0], &mut part);
            stitched.extend(part);
        }
        assert_eq!(whole, stitched);
    }

    #[test]
    fn serving_splits_long_requests() {
        let (m, t, e) = setup();
        let server = ServingSimulator {
            backend: &e,
            model: &m,
            tables: &t,
            arch: GpuArch::v100(),
            max_batch: Some(128),
        };
        let long = Batch::generate(&m, 512, 3);
        let stats = server.serve(std::slice::from_ref(&long)).unwrap();
        assert_eq!(stats.request_latencies.len(), 1);
        assert_eq!(stats.kernel_launches, 4, "512 split into 4 chunks of 128");
    }

    #[test]
    fn unsplit_mode_forwards_whole_batches() {
        let (m, t, e) = setup();
        let server = ServingSimulator {
            backend: &e,
            model: &m,
            tables: &t,
            arch: GpuArch::v100(),
            max_batch: None,
        };
        let long = Batch::generate(&m, 512, 3);
        let stats = server.serve(std::slice::from_ref(&long)).unwrap();
        assert_eq!(stats.kernel_launches, 1);
    }

    #[test]
    fn percentiles_are_ordered() {
        let stats = ServingStats {
            request_latencies: vec![10.0, 50.0, 20.0, 90.0, 30.0],
            kernel_launches: 5,
        };
        assert!(stats.percentile_us(0.5) <= stats.percentile_us(0.99));
        assert_eq!(stats.percentile_us(1.0), 90.0);
        assert!((stats.mean_us() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_is_fine() {
        let (m, t, e) = setup();
        let server = ServingSimulator {
            backend: &e,
            model: &m,
            tables: &t,
            arch: GpuArch::v100(),
            max_batch: Some(64),
        };
        let stats = server.serve(&[]).unwrap();
        assert_eq!(stats.mean_us(), 0.0);
        assert_eq!(stats.percentile_us(0.99), 0.0);
    }
}
