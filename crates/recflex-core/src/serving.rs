//! Online-serving simulation: batching, splitting and tail latency.
//!
//! The paper's evaluation context is inference serving (Section VI-D):
//! "it is common for industrial serving systems to split batches exceeding
//! a specific threshold", while systems like DeepRecSys dispatch unsplit
//! long-tail requests. The full serving machinery — open-loop arrivals,
//! dynamic batching, multi-stream execution, SLO shedding, drift-triggered
//! retuning — lives in [`recflex_serve`]; this module keeps the original
//! offline front-end as a thin compatibility wrapper: requests are served
//! one at a time (closed loop, one stream), split at the configured cap,
//! and summarized as [`ServingStats`].

use recflex_baselines::{Backend, BackendError};
use recflex_data::{Batch, ModelConfig};
use recflex_embedding::TableSet;
use recflex_serve::{BatchPolicy, Request, ServeConfig, ServeError, ServeRuntime};
use recflex_sim::GpuArch;

/// Latency statistics over a served request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingStats {
    /// Per-request latencies, µs, in arrival order.
    pub request_latencies: Vec<f64>,
    /// Kernel launches issued.
    pub kernel_launches: u32,
}

impl ServingStats {
    /// Mean request latency.
    pub fn mean_us(&self) -> f64 {
        if self.request_latencies.is_empty() {
            return 0.0;
        }
        self.request_latencies.iter().sum::<f64>() / self.request_latencies.len() as f64
    }

    /// Latency percentile (`q` in `[0, 1]`), nearest-rank.
    pub fn percentile_us(&self, q: f64) -> f64 {
        if self.request_latencies.is_empty() {
            return 0.0;
        }
        let mut v = self.request_latencies.clone();
        v.sort_by(f64::total_cmp);
        let idx = ((v.len() as f64 * q).ceil() as usize).clamp(1, v.len()) - 1;
        v[idx]
    }
}

/// A serving front-end over one embedding backend.
pub struct ServingSimulator<'a> {
    /// The backend under test.
    pub backend: &'a dyn Backend,
    /// The model served.
    pub model: &'a ModelConfig,
    /// Its tables.
    pub tables: &'a TableSet,
    /// The simulated device.
    pub arch: GpuArch,
    /// Requests above this many samples are split into chunks of at most
    /// this size (the industrial practice of Section VI-D). `None`
    /// forwards requests unsplit, DeepRecSys-style. A cap of 0 saturates
    /// to 1 rather than failing.
    pub max_batch: Option<u32>,
}

impl ServingSimulator<'_> {
    /// Serve a request stream; each request is processed (split if
    /// configured) and its chunks run sequentially on the device.
    ///
    /// Implemented as the closed-loop, single-stream special case of
    /// [`ServeRuntime`]: request latency is the sum of its chunk
    /// latencies, exactly the original offline semantics.
    pub fn serve(&self, requests: &[Batch]) -> Result<ServingStats, BackendError> {
        let stream: Vec<Request> = requests
            .iter()
            .enumerate()
            .map(|(i, b)| Request {
                id: i as u64,
                arrival_us: 0.0,
                batch: b.clone(),
            })
            .collect();
        let runtime = ServeRuntime {
            backend: self.backend,
            model: self.model,
            tables: self.tables,
            arch: &self.arch,
            config: ServeConfig {
                streams: 1,
                policy: match self.max_batch {
                    Some(cap) => BatchPolicy::Split { cap: cap.max(1) },
                    None => BatchPolicy::Unsplit,
                },
                slo_deadline_us: None,
                closed_loop: true,
                hot_shard_cap: None,
            },
        };
        let report = runtime.serve(&stream).map_err(|e| match e {
            ServeError::Backend(b) => b,
            // Policy errors are unreachable: the cap is saturated above.
            ServeError::Policy(m) | ServeError::Internal(m) => BackendError::Launch(m.into()),
        })?;
        Ok(ServingStats {
            request_latencies: report.records.iter().map(|r| r.latency_us()).collect(),
            kernel_launches: report.kernel_launches as u32,
        })
    }
}

/// Split a batch into chunks of at most `cap` samples, preserving sample
/// order and CSR validity. A `cap` of 0 saturates to 1 instead of
/// panicking (delegates to [`Batch::split`]).
pub fn split_batch(batch: &Batch, cap: u32) -> Vec<Batch> {
    batch
        .split(cap.max(1))
        .expect("cap is saturated to at least 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RecFlexEngine;
    use recflex_data::{shift_distribution, Dataset, ModelPreset};
    use recflex_embedding::reference_pooled;
    use recflex_serve::{DriftConfig, LifecycleConfig, RetunePolicy, WorkloadSpec};
    use recflex_tuner::TunerConfig;

    fn setup() -> (ModelConfig, TableSet, RecFlexEngine) {
        let m = ModelPreset::A.scaled(0.01);
        let t = TableSet::for_model(&m);
        let ds = Dataset::synthesize(&m, 2, 64, 5);
        let e = RecFlexEngine::tune(&m, &ds, &GpuArch::v100(), &TunerConfig::fast());
        (m, t, e)
    }

    #[test]
    fn split_preserves_csr_semantics() {
        let m = ModelPreset::C.scaled(0.01);
        let batch = Batch::generate(&m, 100, 7);
        let chunks = split_batch(&batch, 32);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().map(|c| c.batch_size).sum::<u32>(), 100);
        for c in &chunks {
            c.validate(&m).unwrap();
        }
        // Lookups are conserved and in order.
        let total: u32 = chunks.iter().map(|c| c.features[0].total_lookups()).sum();
        assert_eq!(total, batch.features[0].total_lookups());
        // Per-sample pooling matches across the split boundary.
        let tables = TableSet::for_model(&m);
        let dim = m.features[0].emb_dim as usize;
        let mut whole = vec![0.0f32; 100 * dim];
        reference_pooled(tables.table(0), &batch.features[0], &mut whole);
        let mut stitched = Vec::new();
        for c in &chunks {
            let mut part = vec![0.0f32; c.batch_size as usize * dim];
            reference_pooled(tables.table(0), &c.features[0], &mut part);
            stitched.extend(part);
        }
        assert_eq!(whole, stitched);
    }

    #[test]
    fn split_with_zero_cap_saturates_instead_of_panicking() {
        let m = ModelPreset::A.scaled(0.01);
        let batch = Batch::generate(&m, 4, 11);
        let chunks = split_batch(&batch, 0);
        assert_eq!(chunks.len(), 4, "cap 0 behaves like cap 1");
        assert!(chunks.iter().all(|c| c.batch_size == 1));
    }

    #[test]
    fn serving_splits_long_requests() {
        let (m, t, e) = setup();
        let server = ServingSimulator {
            backend: &e,
            model: &m,
            tables: &t,
            arch: GpuArch::v100(),
            max_batch: Some(128),
        };
        let long = Batch::generate(&m, 512, 3);
        let stats = server.serve(std::slice::from_ref(&long)).unwrap();
        assert_eq!(stats.request_latencies.len(), 1);
        assert_eq!(stats.kernel_launches, 4, "512 split into 4 chunks of 128");
    }

    #[test]
    fn unsplit_mode_forwards_whole_batches() {
        let (m, t, e) = setup();
        let server = ServingSimulator {
            backend: &e,
            model: &m,
            tables: &t,
            arch: GpuArch::v100(),
            max_batch: None,
        };
        let long = Batch::generate(&m, 512, 3);
        let stats = server.serve(std::slice::from_ref(&long)).unwrap();
        assert_eq!(stats.kernel_launches, 1);
    }

    #[test]
    fn split_latency_is_the_sum_of_chunk_latencies() {
        let (m, t, e) = setup();
        let long = Batch::generate(&m, 512, 3);
        let mut expect = 0.0;
        for chunk in split_batch(&long, 128) {
            expect += Backend::run(&e, &m, &t, &chunk, &GpuArch::v100())
                .unwrap()
                .latency_us;
        }
        let server = ServingSimulator {
            backend: &e,
            model: &m,
            tables: &t,
            arch: GpuArch::v100(),
            max_batch: Some(128),
        };
        let stats = server.serve(std::slice::from_ref(&long)).unwrap();
        assert!(
            (stats.request_latencies[0] - expect).abs() < 1e-6,
            "wrapper preserves offline semantics: {} vs {expect}",
            stats.request_latencies[0]
        );
    }

    #[test]
    fn percentiles_are_ordered() {
        let stats = ServingStats {
            request_latencies: vec![10.0, 50.0, 20.0, 90.0, 30.0],
            kernel_launches: 5,
        };
        assert!(stats.percentile_us(0.5) <= stats.percentile_us(0.99));
        assert_eq!(stats.percentile_us(1.0), 90.0);
        assert!((stats.mean_us() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_at_zero_is_the_minimum() {
        let stats = ServingStats {
            request_latencies: vec![30.0, 10.0, 20.0],
            kernel_launches: 3,
        };
        assert_eq!(stats.percentile_us(0.0), 10.0);
    }

    #[test]
    fn percentile_of_single_element_is_that_element() {
        let stats = ServingStats {
            request_latencies: vec![42.0],
            kernel_launches: 1,
        };
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(stats.percentile_us(q), 42.0);
        }
    }

    #[test]
    fn empty_stream_is_fine() {
        let (m, t, e) = setup();
        let server = ServingSimulator {
            backend: &e,
            model: &m,
            tables: &t,
            arch: GpuArch::v100(),
            max_batch: Some(64),
        };
        let stats = server.serve(&[]).unwrap();
        assert_eq!(stats.mean_us(), 0.0);
        assert_eq!(stats.percentile_us(0.99), 0.0);
    }

    #[test]
    fn replaying_a_seeded_stream_reproduces_stats_exactly() {
        let (m, t, e) = setup();
        let server = ServingSimulator {
            backend: &e,
            model: &m,
            tables: &t,
            arch: GpuArch::v100(),
            max_batch: Some(128),
        };
        let mk = || -> Vec<Batch> {
            (0..8)
                .map(|i| Batch::generate(&m, 64 + i * 32, 100 + i as u64))
                .collect()
        };
        let a = server.serve(&mk()).unwrap();
        let b = server.serve(&mk()).unwrap();
        assert_eq!(a, b, "same seeds, bit-identical stats");
    }

    #[test]
    fn drifted_traffic_retunes_the_engine_and_keeps_serving() {
        let (m, _t, e) = setup();
        let arch = GpuArch::v100();
        let tables = TableSet::for_model(&m);
        // Live traffic from a much heavier distribution than the engine
        // was tuned on.
        let shifted = shift_distribution(&m, 2.5, 0.0);
        let reqs = WorkloadSpec::long_tail(500.0).stream(&shifted, 24, 17);

        let mut policy = RetunePolicy {
            drift: DriftConfig {
                window: 8,
                threshold: 0.3,
                feature_threshold: 0.5,
            },
            retune_latency_us: 5_000.0,
            lifecycle: LifecycleConfig::default(),
            retuner: Box::new(|recent: &[Batch]| {
                // A real background retune: tune a fresh engine on the
                // drift window, exactly what the paper's offline tuner
                // would do on the new distribution.
                let ds = Dataset::from_batches(recent.to_vec());
                let engine =
                    RecFlexEngine::tune(&shifted, &ds, &GpuArch::v100(), &TunerConfig::fast());
                (Box::new(engine) as Box<dyn Backend>).into()
            }),
        };
        // The runtime's model is the one the engine was tuned on — the
        // drift monitor's reference — while the traffic itself comes
        // from the shifted distribution.
        let runtime = ServeRuntime {
            backend: &e,
            model: &m,
            tables: &tables,
            arch: &arch,
            config: ServeConfig {
                streams: 2,
                policy: BatchPolicy::Split { cap: 256 },
                slo_deadline_us: None,
                closed_loop: false,
                hot_shard_cap: None,
            },
        };
        let report = runtime.serve_with_retune(&reqs, &mut policy).unwrap();
        assert!(report.retunes >= 1, "drift must trigger a hot swap");
        assert_eq!(
            report.records.len(),
            24,
            "serving continues across the swap"
        );
        assert_eq!(report.shed_rate(), 0.0);
    }
}
