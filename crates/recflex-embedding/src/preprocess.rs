//! Numerical preprocess operators on lookup IDs (paper Section VII,
//! "Larger fusion scopes").
//!
//! Production inputs often pass through per-feature preprocess operators —
//! hashing raw IDs into the table range, clamping out-of-vocabulary IDs to
//! a default row, bucketizing numerical values — before the embedding
//! lookup. The paper notes these "can be clustered" into the fused kernel;
//! this module provides the operators, their functional application, and
//! their per-lookup issue cost so the fusion-scope experiment can compare
//! running them as a separate elementwise kernel versus inlined into the
//! embedding schedules.

use recflex_data::{Batch, FeatureBatch, ModelConfig};

/// One preprocess operator over a lookup ID.
#[derive(Debug, Clone, PartialEq)]
pub enum PreprocessOp {
    /// `id % modulus` — the standard hashing trick into the table range.
    HashMod {
        /// Table range.
        modulus: u32,
    },
    /// Clamp out-of-vocabulary IDs to a default row.
    Clamp {
        /// Highest valid row; larger IDs map to `default`.
        max_id: u32,
        /// The OOV row.
        default: u32,
    },
    /// Bucketize a numerical value by boundaries (ascending): the output
    /// row is the number of boundaries ≤ the value (right-inclusive
    /// buckets).
    Bucketize {
        /// Ascending bucket boundaries.
        boundaries: Vec<u32>,
    },
}

impl PreprocessOp {
    /// Apply to one raw ID.
    pub fn apply(&self, id: u32) -> u32 {
        match self {
            PreprocessOp::HashMod { modulus } => {
                // splitmix-style avalanche then fold into range.
                let mut x = id as u64;
                x = (x ^ (x >> 16)).wrapping_mul(0x45D9_F3B5);
                (x % (*modulus).max(1) as u64) as u32
            }
            PreprocessOp::Clamp { max_id, default } => {
                if id > *max_id {
                    *default
                } else {
                    id
                }
            }
            PreprocessOp::Bucketize { boundaries } => {
                boundaries.partition_point(|&b| b <= id) as u32
            }
        }
    }

    /// Extra warp-instruction issue slots per lookup when inlined into the
    /// embedding schedule (the fused-scope cost).
    pub fn issue_cost(&self) -> f64 {
        match self {
            PreprocessOp::HashMod { .. } => 6.0, // mul, shifts, xor, mod
            PreprocessOp::Clamp { .. } => 2.0,   // cmp + select
            PreprocessOp::Bucketize { boundaries } => {
                // Branchless binary search.
                (boundaries.len().max(2) as f64).log2().ceil() * 3.0
            }
        }
    }
}

/// The preprocess pipeline of one model: zero or more ops per feature.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PreprocessPipeline {
    /// Per-feature operator chains, in application order.
    pub per_feature: Vec<Vec<PreprocessOp>>,
}

impl PreprocessPipeline {
    /// The standard production pipeline for a model: hash every feature's
    /// raw IDs into its table range, then clamp defensively.
    pub fn standard(model: &ModelConfig) -> Self {
        let per_feature = model
            .features
            .iter()
            .map(|f| {
                vec![
                    PreprocessOp::HashMod {
                        modulus: f.table_rows,
                    },
                    PreprocessOp::Clamp {
                        max_id: f.table_rows - 1,
                        default: 0,
                    },
                ]
            })
            .collect();
        PreprocessPipeline { per_feature }
    }

    /// Apply the whole pipeline to a batch, producing the transformed
    /// lookup indices (the unfused path's intermediate tensor).
    pub fn apply(&self, batch: &Batch) -> Batch {
        assert_eq!(self.per_feature.len(), batch.features.len());
        let features = batch
            .features
            .iter()
            .zip(&self.per_feature)
            .map(|(fb, ops)| {
                let indices = fb
                    .indices
                    .iter()
                    .map(|&id| ops.iter().fold(id, |x, op| op.apply(x)))
                    .collect();
                FeatureBatch {
                    offsets: fb.offsets.clone(),
                    indices,
                }
            })
            .collect();
        Batch {
            batch_size: batch.batch_size,
            features,
        }
    }

    /// Extra issue slots per lookup of feature `f` when fused inline.
    pub fn fused_issue_cost(&self, f: usize) -> f64 {
        self.per_feature[f].iter().map(|op| op.issue_cost()).sum()
    }

    /// Total ops across the model (reporting).
    pub fn total_ops(&self) -> usize {
        self.per_feature.iter().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::ModelPreset;

    #[test]
    fn hash_mod_stays_in_range_and_is_deterministic() {
        let op = PreprocessOp::HashMod { modulus: 1000 };
        for id in [0u32, 1, 999, 12345, u32::MAX] {
            let r = op.apply(id);
            assert!(r < 1000);
            assert_eq!(r, op.apply(id));
        }
    }

    #[test]
    fn clamp_maps_oov_to_default() {
        let op = PreprocessOp::Clamp {
            max_id: 99,
            default: 7,
        };
        assert_eq!(op.apply(50), 50);
        assert_eq!(op.apply(99), 99);
        assert_eq!(op.apply(100), 7);
    }

    #[test]
    fn bucketize_matches_partition_point() {
        let op = PreprocessOp::Bucketize {
            boundaries: vec![10, 100, 1000],
        };
        assert_eq!(op.apply(5), 0);
        assert_eq!(op.apply(10), 1, "boundary itself falls in the next bucket");
        assert_eq!(op.apply(500), 2);
        assert_eq!(op.apply(99999), 3);
    }

    #[test]
    fn standard_pipeline_produces_valid_batches() {
        let m = ModelPreset::A.scaled(0.01);
        let pipeline = PreprocessPipeline::standard(&m);
        // Raw IDs outside the table range, as production traffic has.
        let mut raw = Batch::generate(&m, 32, 5);
        for fb in &mut raw.features {
            for id in &mut fb.indices {
                *id = id.wrapping_mul(2654435761); // arbitrary raw ID space
            }
        }
        let cooked = pipeline.apply(&raw);
        cooked.validate(&m).unwrap();
        assert_eq!(cooked.total_lookups(), raw.total_lookups());
    }

    #[test]
    fn fused_cost_sums_the_chain() {
        let m = ModelPreset::A.scaled(0.01);
        let p = PreprocessPipeline::standard(&m);
        for f in 0..m.features.len() {
            assert!(
                (p.fused_issue_cost(f) - 8.0).abs() < 1e-12,
                "hash(6) + clamp(2)"
            );
        }
        assert_eq!(p.total_ops(), 2 * m.features.len());
    }
}
