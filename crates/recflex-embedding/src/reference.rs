//! Golden reference implementation of the embedding operation.
//!
//! Every schedule, the fused kernel and every baseline must produce output
//! bit-identical to this scalar loop. All implementations accumulate each
//! sample's rows **in CSR order**, so floating-point summation order is
//! fixed and equality is exact, not approximate.

use crate::output::FusedOutput;
use crate::table::{EmbTable, TableSet};
use rayon::prelude::*;
use recflex_data::{Batch, FeatureBatch, ModelConfig};

/// Pool one feature: `out` is `batch × dim`, sample-row-major. Samples with
/// no lookups (feature absent) produce a zero vector.
pub fn reference_pooled<T: EmbTable>(table: &T, fb: &FeatureBatch, out: &mut [f32]) {
    let dim = table.dim() as usize;
    let batch = fb.batch_size();
    debug_assert_eq!(out.len(), batch as usize * dim);
    for s in 0..batch {
        let dst = &mut out[s as usize * dim..(s as usize + 1) * dim];
        dst.fill(0.0);
        for &row in fb.sample_indices(s) {
            for (d, slot) in dst.iter_mut().enumerate() {
                *slot += table.value(row, d as u32);
            }
        }
    }
}

/// Pool every feature of a batch (parallel across features) — the golden
/// full-model embedding output.
pub fn reference_model_output(
    model: &ModelConfig,
    tables: &TableSet,
    batch: &Batch,
) -> FusedOutput {
    let mut out = FusedOutput::zeros(model, batch.batch_size);
    {
        let parts = out.split_features_mut();
        parts
            .into_par_iter()
            .enumerate()
            .for_each(|(f, dst)| reference_pooled(tables.table(f), &batch.features[f], dst));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{DenseTable, VirtualTable};
    use recflex_data::{Batch, ModelPreset};

    #[test]
    fn single_lookup_copies_row() {
        let t = VirtualTable::new(3, 10, 4);
        let fb = FeatureBatch {
            offsets: vec![0, 1],
            indices: vec![7],
        };
        let mut out = vec![0.0; 4];
        reference_pooled(&t, &fb, &mut out);
        for d in 0..4 {
            assert_eq!(out[d as usize], t.value(7, d));
        }
    }

    #[test]
    fn absent_sample_is_zero() {
        let t = VirtualTable::new(3, 10, 4);
        let fb = FeatureBatch {
            offsets: vec![0, 0, 2],
            indices: vec![1, 2],
        };
        let mut out = vec![9.0; 8];
        reference_pooled(&t, &fb, &mut out);
        assert_eq!(&out[0..4], &[0.0; 4]);
        for d in 0..4u32 {
            assert_eq!(out[4 + d as usize], t.value(1, d) + t.value(2, d));
        }
    }

    #[test]
    fn pooling_is_sum_in_csr_order() {
        // Sum in CSR order must match a manual in-order accumulation even
        // with values where order matters at f32 precision.
        let data = vec![1e7f32, 1.0, -1e7, 2.0, 3.0, 4.0];
        let t = DenseTable::new(data, 3, 2);
        let fb = FeatureBatch {
            offsets: vec![0, 3],
            indices: vec![0, 1, 2],
        };
        let mut out = vec![0.0; 2];
        reference_pooled(&t, &fb, &mut out);
        let expect0 = (1e7f32 + -1e7) + 3.0;
        let expect1 = (1.0f32 + 2.0) + 4.0;
        assert_eq!(out, vec![expect0, expect1]);
    }

    #[test]
    fn model_output_matches_per_feature_reference() {
        let m = ModelPreset::A.scaled(0.01);
        let ts = TableSet::for_model(&m);
        let batch = Batch::generate(&m, 32, 5);
        let fused = reference_model_output(&m, &ts, &batch);
        for (f, spec) in m.features.iter().enumerate() {
            let mut solo = vec![0.0; 32 * spec.emb_dim as usize];
            reference_pooled(ts.table(f), &batch.features[f], &mut solo);
            assert_eq!(fused.feature(f), &solo[..], "feature {f} diverged");
        }
    }

    #[test]
    fn model_output_deterministic() {
        let m = ModelPreset::C.scaled(0.005);
        let ts = TableSet::for_model(&m);
        let batch = Batch::generate(&m, 16, 11);
        let a = reference_model_output(&m, &ts, &batch);
        let b = reference_model_output(&m, &ts, &batch);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }
}
