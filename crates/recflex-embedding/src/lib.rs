//! # recflex-embedding — tables, reference pooling and workload analysis
//!
//! The embedding operation (paper Figure 1, dotted box): for each sample,
//! gather the embedding-table rows named by its lookup IDs and reduce them
//! element-wise (sum pooling) into one vector per feature. This crate holds:
//!
//! * [`EmbTable`] — the table abstraction. [`VirtualTable`] produces
//!   deterministic values from a hash so thousand-feature models need no
//!   gigabytes of weights; [`DenseTable`] is a materialized variant for
//!   small tests.
//! * [`reference_pooled`] — the golden scalar implementation every schedule
//!   and every baseline must match bit-for-bit (all implementations sum in
//!   CSR order, so equality is exact).
//! * [`FeatureWorkload`] — the host-side workload analysis of paper
//!   Section IV-B: one cheap pass over a batch's CSR computes the lookup
//!   counts, unique-row footprints and pooling statistics that drive both
//!   the runtime thread mapping and the simulator's memory model.
//! * [`FusedOutput`] — the concatenated output layout (feature-major,
//!   sample-row-major inside a feature) that the DNN consumes.

pub mod cache;
pub mod output;
pub mod preprocess;
pub mod reference;
pub mod table;
pub mod workload;

pub use cache::CachePlan;
pub use output::FusedOutput;
pub use preprocess::{PreprocessOp, PreprocessPipeline};
pub use reference::{reference_model_output, reference_pooled};
pub use table::{DenseTable, EmbTable, TableSet, VirtualTable};
pub use workload::{analyze_batch, FeatureWorkload};
