//! Embedding tables.
//!
//! Production models hold hundreds of gigabytes of embedding weights; the
//! values themselves are irrelevant to kernel performance. [`VirtualTable`]
//! therefore derives every element deterministically from a hash of
//! `(table seed, row, dim)` — O(1) memory, yet every lookup is a concrete
//! reproducible `f32`, so functional correctness of schedules is fully
//! testable. [`DenseTable`] materializes real weights for small tests.

use recflex_data::ModelConfig;

/// Read-only embedding table.
pub trait EmbTable: Sync {
    /// Row vector length.
    fn dim(&self) -> u32;
    /// Number of rows.
    fn rows(&self) -> u32;
    /// Element at `(row, d)`. Callers guarantee `row < rows(), d < dim()`.
    fn value(&self, row: u32, d: u32) -> f32;

    /// Copy row `row` into `out` (length `dim()`).
    fn read_row(&self, row: u32, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.dim() as usize);
        for (d, slot) in out.iter_mut().enumerate() {
            *slot = self.value(row, d as u32);
        }
    }
}

/// splitmix64 — small, fast, well-distributed; the standard choice for
/// deriving deterministic pseudo-data.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash-defined table: `value(row, d)` is a deterministic f32 in `(-1, 1)`.
#[derive(Debug, Clone)]
pub struct VirtualTable {
    seed: u64,
    rows: u32,
    dim: u32,
}

impl VirtualTable {
    /// Create a virtual table.
    pub fn new(seed: u64, rows: u32, dim: u32) -> Self {
        VirtualTable { seed, rows, dim }
    }
}

impl EmbTable for VirtualTable {
    fn dim(&self) -> u32 {
        self.dim
    }
    fn rows(&self) -> u32 {
        self.rows
    }
    #[inline]
    fn value(&self, row: u32, d: u32) -> f32 {
        debug_assert!(row < self.rows && d < self.dim);
        let h = splitmix64(self.seed ^ ((row as u64) << 32) ^ d as u64);
        // Map the top 24 bits to (-1, 1).
        let m = (h >> 40) as f32 / (1u64 << 24) as f32;
        2.0 * m - 1.0
    }
}

/// Materialized table backed by a `Vec<f32>` (row-major).
#[derive(Debug, Clone)]
pub struct DenseTable {
    data: Vec<f32>,
    rows: u32,
    dim: u32,
}

impl DenseTable {
    /// Create from row-major data; `data.len() == rows × dim`.
    pub fn new(data: Vec<f32>, rows: u32, dim: u32) -> Self {
        assert_eq!(data.len(), rows as usize * dim as usize);
        DenseTable { data, rows, dim }
    }

    /// Materialize a [`VirtualTable`] (small tables only — tests).
    pub fn from_virtual(v: &VirtualTable) -> Self {
        let mut data = Vec::with_capacity(v.rows() as usize * v.dim() as usize);
        for r in 0..v.rows() {
            for d in 0..v.dim() {
                data.push(v.value(r, d));
            }
        }
        DenseTable::new(data, v.rows(), v.dim())
    }
}

impl EmbTable for DenseTable {
    fn dim(&self) -> u32 {
        self.dim
    }
    fn rows(&self) -> u32 {
        self.rows
    }
    #[inline]
    fn value(&self, row: u32, d: u32) -> f32 {
        self.data[row as usize * self.dim as usize + d as usize]
    }
}

/// All embedding tables of one model, seeded from the model name so every
/// component (RecFlex, every baseline, the reference) reads identical
/// weights.
pub struct TableSet {
    tables: Vec<VirtualTable>,
}

impl TableSet {
    /// Build the tables for `model`.
    pub fn for_model(model: &ModelConfig) -> Self {
        let base = model.name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01B3)
        });
        let tables = model
            .features
            .iter()
            .enumerate()
            .map(|(i, f)| VirtualTable::new(splitmix64(base ^ i as u64), f.table_rows, f.emb_dim))
            .collect();
        TableSet { tables }
    }

    /// Table of feature `f`.
    pub fn table(&self, f: usize) -> &VirtualTable {
        &self.tables[f]
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::ModelPreset;

    #[test]
    fn virtual_table_deterministic_and_in_range() {
        let t = VirtualTable::new(42, 100, 16);
        for r in (0..100).step_by(7) {
            for d in 0..16 {
                let v = t.value(r, d);
                assert_eq!(v, t.value(r, d));
                assert!((-1.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn virtual_values_vary_by_row_and_dim() {
        let t = VirtualTable::new(42, 100, 16);
        assert_ne!(t.value(0, 0), t.value(1, 0));
        assert_ne!(t.value(0, 0), t.value(0, 1));
        let t2 = VirtualTable::new(43, 100, 16);
        assert_ne!(t.value(0, 0), t2.value(0, 0), "seed must matter");
    }

    #[test]
    fn dense_materialization_matches_virtual() {
        let v = VirtualTable::new(7, 50, 8);
        let d = DenseTable::from_virtual(&v);
        for r in 0..50 {
            for k in 0..8 {
                assert_eq!(v.value(r, k), d.value(r, k));
            }
        }
    }

    #[test]
    fn read_row_copies_all_dims() {
        let t = VirtualTable::new(1, 10, 12);
        let mut row = vec![0.0; 12];
        t.read_row(3, &mut row);
        for (d, &x) in row.iter().enumerate() {
            assert_eq!(x, t.value(3, d as u32));
        }
    }

    #[test]
    fn table_set_matches_model_shapes() {
        let m = ModelPreset::A.scaled(0.01);
        let ts = TableSet::for_model(&m);
        assert_eq!(ts.len(), m.features.len());
        for (i, f) in m.features.iter().enumerate() {
            assert_eq!(ts.table(i).dim(), f.emb_dim);
            assert_eq!(ts.table(i).rows(), f.table_rows);
        }
    }

    #[test]
    fn table_set_reproducible_across_builds() {
        let m = ModelPreset::A.scaled(0.01);
        let a = TableSet::for_model(&m);
        let b = TableSet::for_model(&m);
        assert_eq!(a.table(0).value(5, 2), b.table(0).value(5, 2));
    }
}
