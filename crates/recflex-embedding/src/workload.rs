//! Host-side workload analysis (paper Section IV-B).
//!
//! Before launching the fused kernel, RecFlex scans each feature's CSR on
//! the CPU — a pass the paper hides behind input preprocessing and measures
//! at < 0.1 % of data-loading time. The scan yields a [`FeatureWorkload`]
//! per feature: everything the runtime thread mapping, the schedules'
//! block-count formulas and the simulator's memory model need.

use rayon::prelude::*;
use recflex_data::{Batch, FeatureBatch, ModelConfig};

/// Workload statistics of one feature in one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureWorkload {
    /// Feature index in the model.
    pub feature_idx: usize,
    /// Samples in the batch.
    pub batch_size: u32,
    /// Total lookups across the batch.
    pub total_lookups: u32,
    /// Exact count of distinct rows touched.
    pub unique_rows: u32,
    /// Largest per-sample pooling factor.
    pub max_pf: u32,
    /// Mean pooling factor over *all* samples (absent samples count 0).
    pub mean_pf: f64,
    /// Samples with at least one lookup.
    pub present_samples: u32,
    /// Embedding dimension of the feature.
    pub emb_dim: u32,
    /// Embedding-table rows.
    pub table_rows: u32,
    /// Fraction of this batch's lookups that miss the GPU hot cache and
    /// must travel over the host interconnect (0.0 = table fully device-
    /// resident). Set by [`crate::CachePlan`]-aware bindings.
    pub uvm_cold_frac: f64,
}

impl FeatureWorkload {
    /// Analyze one feature's CSR.
    pub fn analyze(feature_idx: usize, fb: &FeatureBatch, emb_dim: u32, table_rows: u32) -> Self {
        let batch_size = fb.batch_size();
        let total_lookups = fb.total_lookups();
        let mut max_pf = 0u32;
        let mut present = 0u32;
        for s in 0..batch_size {
            let pf = fb.pooling_factor(s);
            max_pf = max_pf.max(pf);
            present += (pf > 0) as u32;
        }
        FeatureWorkload {
            feature_idx,
            batch_size,
            total_lookups,
            unique_rows: fb.unique_rows(),
            max_pf,
            mean_pf: if batch_size == 0 {
                0.0
            } else {
                total_lookups as f64 / batch_size as f64
            },
            present_samples: present,
            emb_dim,
            table_rows,
            uvm_cold_frac: 0.0,
        }
    }

    /// Copy of this workload with a UVM cold fraction attached.
    pub fn with_uvm_cold_frac(mut self, cold: f64) -> Self {
        self.uvm_cold_frac = cold.clamp(0.0, 1.0);
        self
    }

    /// Bytes read from the table across the batch (each lookup reads one
    /// `dim × 4`-byte row).
    pub fn bytes_read(&self) -> u64 {
        self.total_lookups as u64 * self.emb_dim as u64 * 4
    }

    /// First-touch distinct bytes (unique rows × row bytes).
    pub fn unique_bytes(&self) -> u64 {
        (self.unique_rows as u64 * self.emb_dim as u64 * 4).min(self.bytes_read())
    }

    /// Bytes written (one pooled vector per sample, absent ones zeroed).
    pub fn bytes_written(&self) -> u64 {
        self.batch_size as u64 * self.emb_dim as u64 * 4
    }

    /// Reuse factor `total / unique` (≥ 1 when any lookups exist).
    pub fn reuse_factor(&self) -> f64 {
        if self.unique_rows == 0 {
            1.0
        } else {
            self.total_lookups as f64 / self.unique_rows as f64
        }
    }
}

/// Analyze every feature of a batch in parallel.
pub fn analyze_batch(model: &ModelConfig, batch: &Batch) -> Vec<FeatureWorkload> {
    model
        .features
        .par_iter()
        .zip(batch.features.par_iter())
        .enumerate()
        .map(|(i, (spec, fb))| FeatureWorkload::analyze(i, fb, spec.emb_dim, spec.table_rows))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{Batch, FeatureBatch, ModelPreset};

    #[test]
    fn stats_of_handcrafted_csr() {
        // 3 samples: pf 2, 0, 3; rows {5,5,1,2,5}.
        let fb = FeatureBatch {
            offsets: vec![0, 2, 2, 5],
            indices: vec![5, 5, 1, 2, 5],
        };
        let w = FeatureWorkload::analyze(0, &fb, 8, 100);
        assert_eq!(w.total_lookups, 5);
        assert_eq!(w.unique_rows, 3);
        assert_eq!(w.max_pf, 3);
        assert_eq!(w.present_samples, 2);
        assert!((w.mean_pf - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.bytes_read(), 5 * 8 * 4);
        assert_eq!(w.unique_bytes(), 3 * 8 * 4);
        assert_eq!(w.bytes_written(), 3 * 8 * 4);
        assert!((w.reuse_factor() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_feature_is_sane() {
        let fb = FeatureBatch::empty(4);
        let w = FeatureWorkload::analyze(0, &fb, 16, 100);
        assert_eq!(w.total_lookups, 0);
        assert_eq!(w.unique_rows, 0);
        assert_eq!(w.max_pf, 0);
        assert_eq!(w.present_samples, 0);
        assert_eq!(w.reuse_factor(), 1.0);
    }

    #[test]
    fn batch_analysis_covers_all_features() {
        let m = ModelPreset::A.scaled(0.01);
        let batch = Batch::generate(&m, 64, 9);
        let ws = analyze_batch(&m, &batch);
        assert_eq!(ws.len(), m.features.len());
        for (i, w) in ws.iter().enumerate() {
            assert_eq!(w.feature_idx, i);
            assert_eq!(w.emb_dim, m.features[i].emb_dim);
            assert_eq!(w.total_lookups, batch.features[i].total_lookups());
        }
    }

    #[test]
    fn unique_bytes_never_exceed_bytes_read() {
        let m = ModelPreset::C.scaled(0.01);
        let batch = Batch::generate(&m, 128, 13);
        for w in analyze_batch(&m, &batch) {
            assert!(w.unique_bytes() <= w.bytes_read());
            assert!(w.unique_rows <= w.total_lookups);
            assert!(w.present_samples <= w.batch_size);
        }
    }
}
