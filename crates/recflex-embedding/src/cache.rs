//! GPU hot-embedding cache over host-resident tables (paper Section VII).
//!
//! When the embedding tables exceed device memory, the paper suggests using
//! "the GPU to serve as the hot-embedding cache of the CPU … by developing
//! corresponding schedules with unified memory (UVM)". This module plans
//! which rows to pin on the device: a frequency-greedy selection over
//! historical traffic (the AdaEmbed/Fleche-style policy the paper cites),
//! normalized per byte so narrow rows are not crowded out by wide ones.
//! The resulting per-feature *cold fractions* feed the simulator's UVM
//! channel (see `recflex_sim::BlockProfile::demote_to_uvm`).

use std::collections::HashMap;

use rayon::prelude::*;
use recflex_data::{Batch, FeatureBatch, ModelConfig};

/// A device-cache plan: the hot rows of every feature.
#[derive(Debug, Clone)]
pub struct CachePlan {
    /// Per feature: sorted hot-row IDs resident on the device.
    pub hot_rows: Vec<Vec<u32>>,
    /// Device bytes the plan occupies.
    pub resident_bytes: u64,
    /// The budget the plan was built for.
    pub capacity_bytes: u64,
}

impl CachePlan {
    /// Build a plan from historical batches under a device-byte budget.
    ///
    /// Greedy by access frequency per byte: every observed `(feature, row)`
    /// pair is scored `hits / row_bytes` and admitted best-first until the
    /// budget is exhausted.
    pub fn plan(model: &ModelConfig, history: &[Batch], capacity_bytes: u64) -> Self {
        // Count row popularity per feature (parallel over features).
        let counts: Vec<HashMap<u32, u64>> = (0..model.features.len())
            .into_par_iter()
            .map(|f| {
                let mut c: HashMap<u32, u64> = HashMap::new();
                for b in history {
                    for &row in &b.features[f].indices {
                        *c.entry(row).or_default() += 1;
                    }
                }
                c
            })
            .collect();

        // Global admission queue scored by hits per byte.
        let mut queue: Vec<(f64, usize, u32, u64)> = Vec::new(); // (score, f, row, bytes)
        for (f, c) in counts.iter().enumerate() {
            let row_bytes = model.features[f].row_bytes();
            for (&row, &hits) in c {
                queue.push((hits as f64 / row_bytes as f64, f, row, row_bytes));
            }
        }
        // Deterministic order: score desc, then (feature, row) asc.
        queue.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

        let mut hot_rows: Vec<Vec<u32>> = vec![Vec::new(); model.features.len()];
        let mut resident = 0u64;
        for (_, f, row, bytes) in queue {
            if resident + bytes > capacity_bytes {
                continue;
            }
            resident += bytes;
            hot_rows[f].push(row);
        }
        for rows in &mut hot_rows {
            rows.sort_unstable();
        }
        CachePlan {
            hot_rows,
            resident_bytes: resident,
            capacity_bytes,
        }
    }

    /// Fraction of a live feature batch's lookups that *miss* the device
    /// cache (the UVM cold fraction).
    pub fn cold_fraction(&self, feature_idx: usize, fb: &FeatureBatch) -> f64 {
        let total = fb.total_lookups();
        if total == 0 {
            return 0.0;
        }
        let hot = &self.hot_rows[feature_idx];
        let misses = fb
            .indices
            .iter()
            .filter(|&&row| hot.binary_search(&row).is_err())
            .count();
        misses as f64 / total as f64
    }

    /// Expected hit rate over a whole batch (all features pooled).
    pub fn hit_rate(&self, batch: &Batch) -> f64 {
        let mut hits = 0u64;
        let mut total = 0u64;
        for (f, fb) in batch.features.iter().enumerate() {
            total += fb.total_lookups() as u64;
            let hot = &self.hot_rows[f];
            hits += fb
                .indices
                .iter()
                .filter(|&&r| hot.binary_search(&r).is_ok())
                .count() as u64;
        }
        if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Total table bytes of the model (the footprint UVM avoids keeping
    /// on the device).
    pub fn full_model_bytes(model: &ModelConfig) -> u64 {
        model
            .features
            .iter()
            .map(|f| f.table_rows as u64 * f.row_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{Dataset, ModelPreset};

    fn setup() -> (ModelConfig, Dataset) {
        let mut m = ModelPreset::A.scaled(0.01);
        // Strong skew so caching has something to exploit.
        for f in &mut m.features {
            f.row_skew = 2.0;
        }
        let ds = Dataset::synthesize(&m, 3, 128, 7);
        (m, ds)
    }

    #[test]
    fn plan_respects_budget() {
        let (m, ds) = setup();
        for budget in [1u64 << 12, 1 << 16, 1 << 20] {
            let plan = CachePlan::plan(&m, ds.batches(), budget);
            assert!(plan.resident_bytes <= budget);
        }
    }

    #[test]
    fn bigger_budgets_raise_hit_rates() {
        let (m, ds) = setup();
        let probe = Batch::generate(&m, 128, 99);
        let mut prev = -1.0;
        for budget in [1u64 << 12, 1 << 16, 1 << 20, 1 << 24] {
            let plan = CachePlan::plan(&m, ds.batches(), budget);
            let hr = plan.hit_rate(&probe);
            assert!(hr >= prev - 1e-9, "hit rate must be monotone in budget");
            prev = hr;
        }
        assert!(
            prev > 0.3,
            "a generous budget must catch the hot rows, got {prev}"
        );
    }

    #[test]
    fn cold_fraction_bounds() {
        let (m, ds) = setup();
        let plan = CachePlan::plan(&m, ds.batches(), 1 << 16);
        let probe = Batch::generate(&m, 64, 5);
        for (f, fb) in probe.features.iter().enumerate() {
            let c = plan.cold_fraction(f, fb);
            assert!((0.0..=1.0).contains(&c));
        }
        // Zero budget → everything cold.
        let empty = CachePlan::plan(&m, ds.batches(), 0);
        let fb = &probe.features[0];
        if fb.total_lookups() > 0 {
            assert_eq!(empty.cold_fraction(0, fb), 1.0);
        }
    }

    #[test]
    fn skewed_features_cache_disproportionately_well() {
        // With heavy skew, a cache of ~5% of the footprint should catch far
        // more than 5% of the traffic.
        let (m, ds) = setup();
        let full = CachePlan::full_model_bytes(&m);
        let plan = CachePlan::plan(&m, ds.batches(), full / 20);
        let probe = Batch::generate(&m, 128, 31);
        let hr = plan.hit_rate(&probe);
        assert!(
            hr > 0.15,
            "5% budget should beat 5% hit rate clearly, got {hr}"
        );
    }

    #[test]
    fn plan_is_deterministic() {
        let (m, ds) = setup();
        let a = CachePlan::plan(&m, ds.batches(), 1 << 18);
        let b = CachePlan::plan(&m, ds.batches(), 1 << 18);
        assert_eq!(a.hot_rows, b.hot_rows);
    }
}
