//! Concatenated embedding output layout.
//!
//! The pooled vectors of all features are concatenated per sample before
//! entering the DNN (paper Figure 1). We store the buffer feature-major —
//! feature `f` owns a contiguous `batch × dim_f` region — because that is
//! what the fused kernel's per-feature block groups write, and it lets the
//! functional executor hand each feature a disjoint `&mut [f32]` for safe
//! parallel writes.

use recflex_data::ModelConfig;

/// Output buffer of one fused embedding launch.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedOutput {
    data: Vec<f32>,
    /// Per-feature start offsets into `data`; `offsets[f+1] - offsets[f] =
    /// batch × dim_f`. Length `num_features + 1`.
    offsets: Vec<usize>,
    dims: Vec<u32>,
    batch_size: u32,
}

impl FusedOutput {
    /// Allocate a zeroed output for `model` and `batch_size`.
    pub fn zeros(model: &ModelConfig, batch_size: u32) -> Self {
        let mut offsets = Vec::with_capacity(model.features.len() + 1);
        let mut dims = Vec::with_capacity(model.features.len());
        let mut acc = 0usize;
        offsets.push(0);
        for f in &model.features {
            acc += batch_size as usize * f.emb_dim as usize;
            offsets.push(acc);
            dims.push(f.emb_dim);
        }
        FusedOutput {
            data: vec![0.0; acc],
            offsets,
            dims,
            batch_size,
        }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.dims.len()
    }

    /// Batch size.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Feature `f`'s region: `batch × dim_f`, sample-row-major.
    pub fn feature(&self, f: usize) -> &[f32] {
        &self.data[self.offsets[f]..self.offsets[f + 1]]
    }

    /// Pooled vector of `(feature, sample)`.
    pub fn sample(&self, f: usize, s: u32) -> &[f32] {
        let dim = self.dims[f] as usize;
        let base = self.offsets[f] + s as usize * dim;
        &self.data[base..base + dim]
    }

    /// Split the buffer into one mutable region per feature, enabling
    /// data-race-free parallel execution across features.
    pub fn split_features_mut(&mut self) -> Vec<&mut [f32]> {
        let mut out = Vec::with_capacity(self.dims.len());
        let mut rest: &mut [f32] = &mut self.data;
        let mut prev = 0usize;
        for f in 0..self.dims.len() {
            let len = self.offsets[f + 1] - prev;
            let (head, tail) = rest.split_at_mut(len);
            out.push(head);
            rest = tail;
            prev = self.offsets[f + 1];
        }
        out
    }

    /// Concatenated row of sample `s` across all features, in feature
    /// order — the DNN input row. Allocates; used at the embedding→DNN
    /// boundary and in tests.
    pub fn concat_sample(&self, s: u32) -> Vec<f32> {
        let mut row = Vec::with_capacity(
            self.offsets.last().copied().unwrap_or(0) / self.batch_size.max(1) as usize,
        );
        for f in 0..self.num_features() {
            row.extend_from_slice(self.sample(f, s));
        }
        row
    }

    /// Maximum absolute difference against another output of identical
    /// shape (test helper).
    pub fn max_abs_diff(&self, other: &FusedOutput) -> f32 {
        assert_eq!(self.offsets, other.offsets, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Raw data (read-only).
    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::ModelPreset;

    #[test]
    fn layout_offsets_are_consistent() {
        let m = ModelPreset::A.scaled(0.01);
        let out = FusedOutput::zeros(&m, 32);
        assert_eq!(out.num_features(), m.features.len());
        let total: usize = m.features.iter().map(|f| 32 * f.emb_dim as usize).sum();
        assert_eq!(out.data().len(), total);
        for (f, spec) in m.features.iter().enumerate() {
            assert_eq!(out.feature(f).len(), 32 * spec.emb_dim as usize);
            assert_eq!(out.sample(f, 5).len(), spec.emb_dim as usize);
        }
    }

    #[test]
    fn split_features_mut_partitions_exactly() {
        let m = ModelPreset::B.scaled(0.005);
        let mut out = FusedOutput::zeros(&m, 16);
        let expected: Vec<usize> = m.features.iter().map(|f| 16 * f.emb_dim as usize).collect();
        let parts = out.split_features_mut();
        let got: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn writes_through_split_are_visible() {
        let m = ModelPreset::A.scaled(0.005);
        let mut out = FusedOutput::zeros(&m, 4);
        {
            let mut parts = out.split_features_mut();
            parts[1][0] = 42.0;
        }
        assert_eq!(out.feature(1)[0], 42.0);
        assert_eq!(out.feature(0).iter().copied().fold(0.0f32, f32::max), 0.0);
    }

    #[test]
    fn concat_sample_width_is_model_concat_dim() {
        let m = ModelPreset::C.scaled(0.01);
        let out = FusedOutput::zeros(&m, 8);
        assert_eq!(out.concat_sample(0).len(), m.concat_dim() as usize);
    }

    #[test]
    fn max_abs_diff_of_identical_is_zero() {
        let m = ModelPreset::A.scaled(0.005);
        let a = FusedOutput::zeros(&m, 8);
        let b = FusedOutput::zeros(&m, 8);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }
}
