//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] / [`Rng::gen_bool`].
//!
//! The container this reproduction builds in has no crates.io access, so
//! the workspace patches `rand` to this crate (see `[patch.crates-io]` in
//! the root manifest). The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, high-quality and fast, which is all the
//! seeded workload synthesis needs. It makes no attempt to match upstream
//! `StdRng`'s exact output stream, only its API and statistical contract.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling interface (the `gen_range`/`gen_bool` subset).
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// The raw 64-bit source every generator provides.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_f64(bits: u64) -> f64 {
    // 53 mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = uniform_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // Floating rounding may land exactly on `end`; stay inside.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++, SplitMix64-seeded).
    ///
    /// API-compatible stand-in for `rand::rngs::StdRng`; the output stream
    /// differs from upstream but is deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u32> = (0..32).map(|_| a.gen_range(0..1000u32)).collect();
        let vb: Vec<u32> = (0..32).map(|_| b.gen_range(0..1000u32)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u32> = (0..32).map(|_| c.gen_range(0..1000u32)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn float_range_in_bounds_and_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_support() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = r.gen_range(5..=5u32);
            assert_eq!(v, 5);
        }
        let v: i32 = r.gen_range(-3..3);
        assert!((-3..3).contains(&v));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }
}
