//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`], over the vendored
//! `serde` value-tree model. Output is ordinary JSON — files written by
//! this build are readable by any JSON tool, and integers (including
//! `u64` seeds) round-trip exactly because they are printed as integer
//! literals, never through `f64`.

use serde::{Deserialize, Serialize};
pub use serde::Value;

/// JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-editable indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::deserialize_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => write_seq(items.iter(), out, indent, depth, ('[', ']'), |v, o, d| {
            write_value(v, o, indent, d)
        }),
        Value::Obj(entries) => {
            write_seq(entries.iter(), out, indent, depth, ('{', '}'), |(k, v), o, d| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(v, o, indent, d);
            })
        }
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(T, &mut String, usize),
) {
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(item, out, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(brackets.1);
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // Rust's shortest-round-trip Display; force a `.0` marker onto
        // integral values so the reader keeps them in the float domain.
        let s = f.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum container nesting the parser accepts. Parsing recurses per
/// nesting level, so without a ceiling a hostile document of repeated
/// `[`s overflows the stack — an abort, not an `Err`. 128 levels is far
/// beyond any document this workspace writes; deeper input is rejected
/// with a structured error instead.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(c @ (b'{' | b'[')) => {
                if self.depth >= MAX_DEPTH {
                    return Err(Error(format!(
                        "nesting deeper than {MAX_DEPTH} levels at offset {}",
                        self.pos
                    )));
                }
                self.depth += 1;
                let v = if c == b'{' {
                    self.parse_object()
                } else {
                    self.parse_array()
                };
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if n <= i64::MAX as u64 {
                        return Ok(Value::Int(-(n as i64)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("a \"b\"\n".into())),
            ("n".into(), Value::UInt(u64::MAX)),
            ("i".into(), Value::Int(-42)),
            ("f".into(), Value::Float(0.30000000000000004)),
            ("flag".into(), Value::Bool(true)),
            ("arr".into(), Value::Arr(vec![Value::UInt(1), Value::Null])),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        for pretty in [false, true] {
            let mut text = String::new();
            write_value(&v, &mut text, if pretty { Some(2) } else { None }, 0);
            let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
            let back = p.parse_value().unwrap();
            assert_eq!(back, v, "{text}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let mut text = String::new();
        write_value(&Value::Float(2.0), &mut text, None, 0);
        assert_eq!(text, "2.0");
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        assert_eq!(p.parse_value().unwrap(), Value::Float(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5 junk").is_err());
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // One past the ceiling must be a structured error (unbounded
        // recursion would abort the process long before 100k levels).
        let deep = "[".repeat(100_000);
        let err = from_str::<Value>(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // At the ceiling the parser still works.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(from_str::<Value>(&ok).is_ok());
        let over = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(from_str::<Value>(&over).is_err());
    }
}
