//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness, `Criterion`,
//! benchmark groups and `Bencher::{iter, iter_batched}`. Each benchmark is
//! timed with a fixed-iteration wall-clock loop and the mean per-iteration
//! time is printed — enough to compare the Section VI-E overhead claims in
//! an offline container, without criterion's statistical machinery.

use std::time::Instant;

/// How batched setup results are passed to the routine (API-compat enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Inputs of each batch run once.
    PerIteration,
}

/// The benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    iterations: u64,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / self.iterations as f64;
    }

    /// Time `routine` with a fresh `setup` product per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_nanos = 0u128;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total_nanos += start.elapsed().as_nanos();
        }
        self.nanos_per_iter = total_nanos as f64 / self.iterations as f64;
    }
}

/// Top-level benchmark registry.
pub struct Criterion {
    sample_size: u64,
    group_prefix: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50, group_prefix: None }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = match &self.group_prefix {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        };
        let mut b = Bencher { iterations: self.sample_size, nanos_per_iter: 0.0 };
        f(&mut b);
        println!("{full:<44} {:>12.1} ns/iter", b.nanos_per_iter);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: None }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Override the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let saved_size = self.criterion.sample_size;
        let saved_prefix = self.criterion.group_prefix.take();
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.group_prefix = Some(self.name.clone());
        self.criterion.bench_function(name, f);
        self.criterion.sample_size = saved_size;
        self.criterion.group_prefix = saved_prefix;
        self
    }

    /// Close the group.
    pub fn finish(&mut self) {}
}

/// Re-export point used by some criterion idioms.
pub use std::hint::black_box;

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
