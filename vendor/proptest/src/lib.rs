//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The [`proptest!`] macro runs each property over a deterministic sweep
//! of generated cases (default 64, `PROPTEST_CASES` overrides). Inputs
//! are drawn from [`Strategy`] implementations on integer/float ranges.
//! There is no shrinking: on failure the assert message carries the
//! concrete inputs of the failing case, which the deterministic case
//! stream makes trivially reproducible.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one numbered case of one named property.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name decorrelates different properties.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of generated inputs.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one input.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Declare property tests: `proptest! { #[test] fn p(x in 0u32..10) {..} }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..$crate::cases() {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3u32..9, y in 10u64..=12, f in 0.5f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=12).contains(&y));
            prop_assert!((0.5..1.0).contains(&f));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("p", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("p", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], TestRng::for_case("q", 0).next_u64());
    }
}
