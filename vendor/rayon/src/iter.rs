//! Indexed parallel iterators with a deterministic, index-ordered merge.
//!
//! ## Why "indexed"
//!
//! Every source this crate parallelizes over — ranges, `Vec`s, slices,
//! chunked slices — has a stable index order, and every adapter preserves
//! it. The executor splits the index space `[0, len)` into contiguous
//! chunks, runs each chunk as one pool task, and every terminal writes a
//! chunk's results *by index* into a pre-sized buffer (or, for
//! `for_each`, relies on the items themselves being index-addressed, e.g.
//! `par_chunks_mut`'s disjoint sub-slices). Thread count and steal order
//! therefore cannot perturb the output: a 1-thread and an N-thread run
//! produce byte-identical results.
//!
//! ## Keeping unordered sources out (the replay gate's compile-time bound)
//!
//! Unlike upstream rayon's blanket `IntoIterator` bridge (and this
//! crate's previous sequential stand-in), [`IntoParallelIterator`] is
//! implemented **only** for the indexed sources above. A `HashMap` — or
//! anything else whose iteration order is not a stable function of its
//! contents — does not compile here, so an unordered source cannot slip
//! into a replay-gated path. The executor additionally hard-asserts that
//! each chunk yields exactly its slice of the index space before the
//! collected buffer is exposed.

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

use crate::pool;

/// How many chunk tasks to cut per pool thread: enough slack for the
/// stealers to balance uneven chunks, few enough to keep per-task
/// overhead negligible.
const TASKS_PER_THREAD: usize = 4;

// ---------------------------------------------------------------------------
// Producer: a splittable, exactly-sized source of items
// ---------------------------------------------------------------------------

/// A source that can be split at an index into two independent sources.
///
/// Contract: a producer covering `n` items yields *exactly* `n` items in
/// index order from [`Producer::into_seq_iter`], and `split_at(mid)`
/// partitions it into the first `mid` and the remaining `n - mid` items.
pub trait Producer: Send + Sized {
    /// The item type.
    type Item: Send;
    /// The sequential iterator a chunk is drained through.
    type IntoIter: Iterator<Item = Self::Item>;
    /// Split into `[0, mid)` and `[mid, n)`.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Drain this producer's items in index order.
    fn into_seq_iter(self) -> Self::IntoIter;
}

/// Split `producer` (covering `len` items) into chunk tasks and run
/// `consume(offset, chunk_len, chunk)` for each, in parallel when a pool
/// is available. `consume` must drain the chunk in index order.
fn drive<P, F>(len: usize, producer: P, consume: F)
where
    P: Producer,
    F: Fn(usize, usize, P) + Sync,
{
    let threads = pool::parallelism();
    if threads <= 1 || len <= 1 {
        consume(0, len, producer);
        return;
    }
    let chunk = len.div_ceil(threads * TASKS_PER_THREAD).max(1);
    let consume = &consume;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(len.div_ceil(chunk));
    let mut rest = producer;
    let mut offset = 0;
    while len - offset > chunk {
        let (head, tail) = rest.split_at(chunk);
        rest = tail;
        tasks.push(Box::new(move || consume(offset, chunk, head)));
        offset += chunk;
    }
    tasks.push(Box::new(move || consume(offset, len - offset, rest)));
    pool::run_tasks(tasks);
}

// ---------------------------------------------------------------------------
// The iterator trait: adapters + terminals
// ---------------------------------------------------------------------------

/// An exactly-sized, order-preserving parallel iterator.
///
/// This plays the role of both `ParallelIterator` and
/// `IndexedParallelIterator` in upstream rayon: every iterator this
/// crate can build is indexed, which is what makes the deterministic
/// ordered merge possible (see the module docs).
pub trait IndexedParallelIterator: Send + Sized {
    /// The item type.
    type Item: Send;
    /// The splittable source driving this iterator.
    type Producer: Producer<Item = Self::Item>;

    /// Exact number of items.
    fn par_len(&self) -> usize;
    /// Convert into the splittable source.
    fn into_producer(self) -> Self::Producer;

    /// Map each item through `f` (order-preserving).
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Pair each item with its index (order-preserving).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Pair items positionally with `other`, truncating to the shorter.
    fn zip<B: IndexedParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Run `f` on every item. Effects through the items (e.g. writes into
    /// `par_chunks_mut` sub-slices) land disjointly by construction.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let len = self.par_len();
        let producer = self.into_producer();
        drive(len, producer, |_, chunk_len, chunk| {
            let mut produced = 0usize;
            for item in chunk.into_seq_iter() {
                produced += 1;
                assert!(produced <= chunk_len, "producer over-yielded its chunk");
                f(item);
            }
            assert_eq!(produced, chunk_len, "producer under-yielded its chunk");
        });
    }

    /// Collect into `C` with results merged in index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items. Reduced sequentially in index order over the
    /// collected items, so floating-point sums stay bit-identical across
    /// thread counts.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        collect_vec(self).into_iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Ordered-merge terminals
// ---------------------------------------------------------------------------

/// `*mut T` that may cross threads: each chunk task writes a disjoint
/// index range, which is what makes the shared pointer sound.
struct SendPtr<T>(*mut T);
impl<T> Copy for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The slot at `index`. Takes `self` by value so closures capture the
    /// whole wrapper (edition-2021 disjoint capture would otherwise grab
    /// the bare `*mut T` field, which is not `Sync`).
    fn slot(self, index: usize) -> *mut T {
        // SAFETY: callers stay within the buffer they constructed us from.
        unsafe { self.0.add(index) }
    }
}

/// Collect into a `Vec` with every item written at its source index.
fn collect_vec<I: IndexedParallelIterator>(iter: I) -> Vec<I::Item> {
    let len = iter.par_len();
    let producer = iter.into_producer();
    let mut out: Vec<I::Item> = Vec::with_capacity(len);
    let base = SendPtr(out.as_mut_ptr());
    drive(len, producer, move |offset, chunk_len, chunk| {
        let mut written = 0usize;
        for item in chunk.into_seq_iter() {
            // Hard (not debug) assert: an over-yielding producer would
            // otherwise write out of bounds, an under-yielding one would
            // expose uninitialized memory below.
            assert!(written < chunk_len, "producer over-yielded its chunk");
            // SAFETY: `offset + written < offset + chunk_len <= len`, the
            // buffer holds capacity for `len` items, and chunk ranges are
            // disjoint, so each slot is written exactly once.
            unsafe { base.slot(offset + written).write(item) };
            written += 1;
        }
        assert_eq!(written, chunk_len, "producer under-yielded its chunk");
    });
    // SAFETY: `drive` returned without panicking, so (per the asserts
    // above) all `len` slots were initialized. On panic we never get
    // here: the Vec drops with length 0, leaking any written items but
    // never touching uninitialized memory.
    unsafe { out.set_len(len) };
    out
}

/// Types a parallel iterator can collect into with an index-ordered merge.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build `Self` from the iterator's items, in index order.
    fn from_par_iter<I: IndexedParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: IndexedParallelIterator<Item = T>>(iter: I) -> Self {
        collect_vec(iter)
    }
}

/// `collect::<Result<_, _>>()`: every item is computed (no racy
/// short-circuit), then reduced sequentially, so the reported error is
/// always the *lowest-index* one regardless of thread count.
impl<T, E, C> FromParallelIterator<Result<T, E>> for Result<C, E>
where
    T: Send,
    E: Send,
    C: FromIterator<T>,
{
    fn from_par_iter<I: IndexedParallelIterator<Item = Result<T, E>>>(iter: I) -> Self {
        collect_vec(iter).into_iter().collect()
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// `collection.into_par_iter()` over an owned indexed source.
///
/// Deliberately **not** a blanket `IntoIterator` bridge: only sources
/// with a stable index order are accepted (see the module docs).
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// The parallel iterator this source becomes.
    type Iter: IndexedParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
pub struct RangePar<T> {
    range: Range<T>,
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangePar<$t>;
            fn into_par_iter(self) -> RangePar<$t> {
                RangePar { range: self }
            }
        }

        impl IndexedParallelIterator for RangePar<$t> {
            type Item = $t;
            type Producer = Range<$t>;
            fn par_len(&self) -> usize {
                if self.range.end > self.range.start {
                    (self.range.end - self.range.start) as usize
                } else {
                    0
                }
            }
            fn into_producer(self) -> Range<$t> {
                self.range
            }
        }

        impl Producer for Range<$t> {
            type Item = $t;
            type IntoIter = Range<$t>;
            fn split_at(self, mid: usize) -> (Self, Self) {
                let m = self.start + mid as $t;
                (self.start..m, m..self.end)
            }
            fn into_seq_iter(self) -> Self::IntoIter {
                self
            }
        }
    )*};
}

impl_range_par!(u16, u32, u64, usize, i32, i64);

/// Parallel iterator over an owned `Vec`.
pub struct VecPar<T: Send> {
    vec: Vec<T>,
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecPar<T>;
    fn into_par_iter(self) -> VecPar<T> {
        VecPar { vec: self }
    }
}

impl<T: Send> IndexedParallelIterator for VecPar<T> {
    type Item = T;
    type Producer = VecProducer<T>;
    fn par_len(&self) -> usize {
        self.vec.len()
    }
    fn into_producer(self) -> VecProducer<T> {
        VecProducer { vec: self.vec }
    }
}

/// Splittable owned-`Vec` source.
pub struct VecProducer<T: Send> {
    vec: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let tail = self.vec.split_off(mid);
        (self, VecProducer { vec: tail })
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.vec.into_iter()
    }
}

/// `collection.par_iter()` — parallel iteration by shared reference.
pub trait IntoParallelRefIterator<'a> {
    /// The item type (`&'a T`).
    type Item: Send;
    /// The parallel iterator.
    type Iter: IndexedParallelIterator<Item = Self::Item>;
    /// Iterate in parallel by reference.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct SlicePar<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;
    type Producer = &'a [T];
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn into_producer(self) -> &'a [T] {
        self.slice
    }
}

impl<'a, T: Sync> Producer for &'a [T] {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn split_at(self, mid: usize) -> (Self, Self) {
        self.split_at(mid)
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// `collection.par_iter_mut()` — parallel iteration by unique reference.
pub trait IntoParallelRefMutIterator<'a> {
    /// The item type (`&'a mut T`).
    type Item: Send;
    /// The parallel iterator.
    type Iter: IndexedParallelIterator<Item = Self::Item>;
    /// Iterate in parallel by `&mut`.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = SliceMutPar<'a, T>;
    fn par_iter_mut(&'a mut self) -> SliceMutPar<'a, T> {
        SliceMutPar { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = SliceMutPar<'a, T>;
    fn par_iter_mut(&'a mut self) -> SliceMutPar<'a, T> {
        SliceMutPar { slice: self }
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceMutPar<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> IndexedParallelIterator for SliceMutPar<'a, T> {
    type Item = &'a mut T;
    type Producer = &'a mut [T];
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn into_producer(self) -> &'a mut [T] {
        self.slice
    }
}

impl<'a, T: Send> Producer for &'a mut [T] {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn split_at(self, mid: usize) -> (Self, Self) {
        self.split_at_mut(mid)
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.iter_mut()
    }
}

/// `slice.par_chunks(n)` — parallel iteration over `n`-sized sub-slices.
pub trait ParallelSlice<T: Sync> {
    /// Non-overlapping chunks of `chunk_size` (last may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T> {
        assert!(chunk_size != 0, "chunk_size must be non-zero");
        ChunksPar {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Parallel iterator over shared chunks.
pub struct ChunksPar<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> IndexedParallelIterator for ChunksPar<'a, T> {
    type Item = &'a [T];
    type Producer = ChunksProducer<'a, T>;
    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn into_producer(self) -> ChunksProducer<'a, T> {
        ChunksProducer {
            slice: self.slice,
            size: self.size,
        }
    }
}

/// Splittable source of shared chunks (`mid` counts chunks, not elements).
pub struct ChunksProducer<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (head, tail) = self.slice.split_at(at);
        (
            ChunksProducer {
                slice: head,
                size: self.size,
            },
            ChunksProducer {
                slice: tail,
                size: self.size,
            },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

/// `slice.par_chunks_mut(n)` — disjoint mutable sub-slices in parallel.
pub trait ParallelSliceMut<T: Send> {
    /// Non-overlapping mutable chunks of `chunk_size` (last may be
    /// shorter). Chunks are carved with `split_at_mut`, so writes from
    /// different tasks are disjoint by construction.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutPar<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutPar<'_, T> {
        assert!(chunk_size != 0, "chunk_size must be non-zero");
        ChunksMutPar {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ChunksMutPar<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> IndexedParallelIterator for ChunksMutPar<'a, T> {
    type Item = &'a mut [T];
    type Producer = ChunksMutProducer<'a, T>;
    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn into_producer(self) -> ChunksMutProducer<'a, T> {
        ChunksMutProducer {
            slice: self.slice,
            size: self.size,
        }
    }
}

/// Splittable source of mutable chunks (`mid` counts chunks).
pub struct ChunksMutProducer<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (head, tail) = self.slice.split_at_mut(at);
        (
            ChunksMutProducer {
                slice: head,
                size: self.size,
            },
            ChunksMutProducer {
                slice: tail,
                size: self.size,
            },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Order-preserving `map` adapter.
pub struct Map<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, F, U> IndexedParallelIterator for Map<I, F>
where
    I: IndexedParallelIterator,
    F: Fn(I::Item) -> U + Send + Sync,
    U: Send,
{
    type Item = U;
    type Producer = MapProducer<I::Producer, F, U>;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn into_producer(self) -> Self::Producer {
        MapProducer {
            base: self.base.into_producer(),
            f: self.f,
            _out: PhantomData,
        }
    }
}

/// Producer for [`Map`].
pub struct MapProducer<P, F, U> {
    base: P,
    f: Arc<F>,
    _out: PhantomData<fn() -> U>,
}

impl<P, F, U> Producer for MapProducer<P, F, U>
where
    P: Producer,
    F: Fn(P::Item) -> U + Send + Sync,
    U: Send,
{
    type Item = U;
    type IntoIter = MapSeqIter<P::IntoIter, F>;
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(mid);
        (
            MapProducer {
                base: head,
                f: Arc::clone(&self.f),
                _out: PhantomData,
            },
            MapProducer {
                base: tail,
                f: self.f,
                _out: PhantomData,
            },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        MapSeqIter {
            inner: self.base.into_seq_iter(),
            f: self.f,
        }
    }
}

/// Sequential drain of one [`MapProducer`] chunk.
pub struct MapSeqIter<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, F, U> Iterator for MapSeqIter<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> U,
{
    type Item = U;
    fn next(&mut self) -> Option<U> {
        self.inner.next().map(|x| (self.f)(x))
    }
}

/// Order-preserving `enumerate` adapter.
pub struct Enumerate<I> {
    base: I,
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type Producer = EnumerateProducer<I::Producer>;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn into_producer(self) -> Self::Producer {
        EnumerateProducer {
            base: self.base.into_producer(),
            offset: 0,
        }
    }
}

/// Producer for [`Enumerate`]: splits carry the absolute base index.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = EnumerateSeqIter<P::IntoIter>;
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(mid);
        (
            EnumerateProducer {
                base: head,
                offset: self.offset,
            },
            EnumerateProducer {
                base: tail,
                offset: self.offset + mid,
            },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        EnumerateSeqIter {
            inner: self.base.into_seq_iter(),
            next: self.offset,
        }
    }
}

/// Sequential drain of one [`EnumerateProducer`] chunk.
pub struct EnumerateSeqIter<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeqIter<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

/// Positional `zip` adapter.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Producer = ZipProducer<A::Producer, B::Producer>;
    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }
    fn into_producer(self) -> Self::Producer {
        let len = self.par_len();
        let (a_len, b_len) = (self.a.par_len(), self.b.par_len());
        let mut a = self.a.into_producer();
        let mut b = self.b.into_producer();
        // Truncate the longer side so both producers cover exactly `len`.
        if a_len > len {
            a = a.split_at(len).0;
        }
        if b_len > len {
            b = b.split_at(len).0;
        }
        ZipProducer { a, b }
    }
}

/// Producer for [`Zip`]: both sides split at the same index.
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a_head, a_tail) = self.a.split_at(mid);
        let (b_head, b_tail) = self.b.split_at(mid);
        (
            ZipProducer {
                a: a_head,
                b: b_head,
            },
            ZipProducer {
                a: a_tail,
                b: b_tail,
            },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.a.into_seq_iter().zip(self.b.into_seq_iter())
    }
}
