//! The work-stealing thread pool behind every `par_*` entry point.
//!
//! ## Shape
//!
//! A pool owns one deque per worker thread. Work arrives as batches of
//! *chunk tasks* (contiguous index sub-ranges produced by the executor in
//! [`crate::iter`]): a worker pops its own deque from the front and, when
//! that runs dry, steals from the back of a sibling's deque. The thread
//! that submitted a batch does not sleep behind it — it *helps*, running
//! queued tasks itself until its own batch has drained, which also makes
//! nested parallelism (a task that itself calls `par_iter` or `join`)
//! deadlock-free: every waiter is also an executor.
//!
//! ## Determinism
//!
//! The pool never reduces results itself. Scheduling decides only *where*
//! and *when* a chunk runs; *what* it computes and *where its results
//! land* are fixed by the chunk's index range (see the ordered-merge
//! `collect` in [`crate::iter`]). Outputs are therefore byte-identical
//! across thread counts, including the sequential `RECFLEX_THREADS=1`
//! path, which never constructs a pool at all.
//!
//! ## Panics
//!
//! A panicking task never takes down a worker: the payload is caught,
//! parked in its scope, and re-raised on the submitting caller with
//! [`std::panic::resume_unwind`] after every task of the scope has
//! settled (tasks borrow the caller's stack, so the caller must not
//! unwind while any of them could still run).

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::mem;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// A lifetime-erased unit of work (see the safety note in [`run_tasks`]).
type Task = Box<dyn FnOnce() + Send + 'static>;

/// State shared between a pool's workers and the threads that submit to it.
struct Shared {
    /// One deque per worker: the owner pops the front, thieves the back.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Queued-but-unclaimed tasks across all deques (fast idle check).
    pending: AtomicUsize,
    /// Sleep lock + wakeup signal for idle workers.
    idle: Mutex<()>,
    work_cv: Condvar,
    /// Set once by `Drop`; workers exit when they next find no work.
    shutdown: AtomicBool,
    /// Round-robin cursor for submissions from non-worker threads.
    next_deque: AtomicUsize,
}

impl Shared {
    fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Queue a batch: a worker keeps its batch local (thieves will come to
    /// it), an external thread spreads the batch round-robin.
    fn push_tasks(&self, home: Option<usize>, tasks: Vec<Task>) {
        let n = self.deques.len();
        let count = tasks.len();
        match home {
            Some(w) => self.deques[w].lock().unwrap().extend(tasks),
            None => {
                for t in tasks {
                    let i = self.next_deque.fetch_add(1, Ordering::Relaxed) % n;
                    self.deques[i].lock().unwrap().push_back(t);
                }
            }
        }
        self.pending.fetch_add(count, Ordering::Release);
        // Lock-then-notify so a worker that just checked `pending` and is
        // about to wait cannot miss the signal.
        let _g = self.idle.lock().unwrap();
        self.work_cv.notify_all();
    }

    /// Claim one task: own deque front first, then steal siblings' backs.
    fn find_task(&self, me: Option<usize>) -> Option<Task> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        if let Some(w) = me {
            if let Some(t) = self.deques[w].lock().unwrap().pop_front() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(t);
            }
        }
        let n = self.deques.len();
        let start = me.map_or(0, |w| w + 1);
        for off in 0..n {
            let i = (start + off) % n;
            if me == Some(i) {
                continue;
            }
            if let Some(t) = self.deques[i].lock().unwrap().pop_back() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(t);
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    // Nested `par_*` calls from inside a task must land on this pool.
    CURRENT_POOL.with(|c| {
        *c.borrow_mut() = Some(PoolRef {
            shared: Arc::clone(&shared),
            worker: Some(me),
        })
    });
    loop {
        if let Some(t) = shared.find_task(Some(me)) {
            t();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.idle.lock().unwrap();
        if shared.pending.load(Ordering::Acquire) == 0 && !shared.shutdown.load(Ordering::Acquire)
        {
            // Timed wait: a bounded backstop against any missed wakeup.
            let _ = shared
                .work_cv
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap();
        }
    }
}

/// A work-stealing pool with an explicit thread count.
///
/// Most code never touches this type — the `par_*` entry points lazily
/// build one global pool sized by `RECFLEX_THREADS`. An explicit pool
/// exists for code that must compare thread counts *within one process*
/// (the `bench_parallel` trajectory, the pool's own property tests):
/// [`ThreadPool::install`] routes every `par_*` call made by the closure
/// (on this thread) to this pool. `ThreadPool::new(1)` spawns no workers;
/// installing it forces the exact sequential path.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Build a pool with `num_threads` workers (`<= 1` → none: sequential).
    pub fn new(num_threads: usize) -> Self {
        let workers = if num_threads <= 1 { 0 } else { num_threads };
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            idle: Mutex::new(()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_deque: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let s = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("recflex-rayon-{i}"))
                    // Help-first waiting nests task frames on the worker
                    // stack: a worker blocked on a scope executes further
                    // tasks, which may themselves wait. Deeply recursive
                    // `join` trees (the tuner's candidate sweeps, the
                    // pool's own property tests) therefore need far more
                    // headroom than the platform default.
                    .stack_size(16 << 20)
                    .spawn(move || worker_loop(s, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// The pool's degree of parallelism (1 for a sequential pool).
    pub fn current_num_threads(&self) -> usize {
        self.shared.workers().max(1)
    }

    /// Run `op` with this pool as the calling thread's current pool.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = CURRENT_POOL.with(|c| {
            c.borrow_mut().replace(PoolRef {
                shared: Arc::clone(&self.shared),
                worker: None,
            })
        });
        // Restore on unwind too: a panicking `op` must not leave a dangling
        // pool installed on this thread.
        struct Restore(Option<PoolRef>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT_POOL.with(|c| *c.borrow_mut() = prev);
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.idle.lock().unwrap();
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The pool a thread's `par_*` calls route to.
#[derive(Clone)]
struct PoolRef {
    shared: Arc<Shared>,
    /// This thread's worker index, when it *is* a worker of `shared`.
    worker: Option<usize>,
}

thread_local! {
    static CURRENT_POOL: RefCell<Option<PoolRef>> = const { RefCell::new(None) };
}

/// Thread count resolved from `RECFLEX_THREADS` (read once per process):
/// unset, `0`, or unparsable → available parallelism; `1` → sequential
/// (no pool is ever spawned); `n` → `n` workers.
pub fn configured_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        let available = || thread::available_parallelism().map_or(1, |n| n.get());
        match std::env::var("RECFLEX_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) | Err(_) => available(),
                Ok(n) => n,
            },
            Err(_) => available(),
        }
    })
}

fn global_pool() -> Option<&'static ThreadPool> {
    static POOL: OnceLock<Option<ThreadPool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let n = configured_threads();
        (n > 1).then(|| ThreadPool::new(n))
    })
    .as_ref()
}

/// The calling thread's pool: an installed/worker pool wins over the
/// global one; an installed *sequential* pool (`new(1)`) disables
/// parallelism outright rather than falling through to the global pool.
fn current() -> Option<PoolRef> {
    match CURRENT_POOL.with(|c| c.borrow().clone()) {
        Some(r) if r.shared.workers() > 0 => Some(r),
        Some(_) => None,
        None => global_pool().map(|p| PoolRef {
            shared: Arc::clone(&p.shared),
            worker: None,
        }),
    }
}

/// Degree of parallelism the executor should chunk for (1 = stay inline).
pub(crate) fn parallelism() -> usize {
    current().map_or(1, |r| r.shared.workers())
}

/// Per-batch completion tracking: a countdown latch plus the first panic.
struct ScopeState {
    remaining: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn new(tasks: usize) -> Arc<Self> {
        Arc::new(ScopeState {
            remaining: AtomicUsize::new(tasks),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn task_done(&self) {
        self.remaining.fetch_sub(1, Ordering::AcqRel);
        let _g = self.done.lock().unwrap();
        self.done_cv.notify_all();
    }

    /// Re-raise the scope's first panic, if any. Only call after the
    /// latch has drained.
    fn propagate_panic(&self) {
        let payload = self.panic.lock().unwrap().take();
        if let Some(p) = payload {
            panic::resume_unwind(p);
        }
    }
}

/// Wrap a borrowing task so it reports to `scope`, then erase its
/// lifetime for the deques.
///
/// # Safety
///
/// The caller must not return (or unwind) before `scope`'s latch has
/// drained — [`wait_scope`] — because the task may borrow its stack.
unsafe fn erase<'a>(scope: &Arc<ScopeState>, t: Box<dyn FnOnce() + Send + 'a>) -> Task {
    let sc = Arc::clone(scope);
    let wrapped: Box<dyn FnOnce() + Send + 'a> = Box::new(move || {
        if let Err(p) = panic::catch_unwind(AssertUnwindSafe(t)) {
            sc.record_panic(p);
        }
        sc.task_done();
    });
    mem::transmute::<Box<dyn FnOnce() + Send + 'a>, Task>(wrapped)
}

/// Help-first wait: run queued tasks (this scope's or anyone's) until the
/// scope's latch drains. Never blocks unboundedly while work exists, so
/// nested scopes cannot deadlock.
fn wait_scope(pool: &PoolRef, scope: &ScopeState) {
    loop {
        if scope.remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        if let Some(t) = pool.shared.find_task(pool.worker) {
            t();
            continue;
        }
        let guard = scope.done.lock().unwrap();
        if scope.remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        let _ = scope
            .done_cv
            .wait_timeout(guard, Duration::from_millis(1))
            .unwrap();
    }
}

/// Run a batch of independent tasks to completion, in parallel when a
/// pool is available, inline (in submission order) otherwise. The first
/// task panic is re-raised here after all tasks settle.
pub(crate) fn run_tasks(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let pool = match current() {
        Some(p) if tasks.len() > 1 => p,
        _ => {
            for t in tasks {
                t();
            }
            return;
        }
    };
    let scope = ScopeState::new(tasks.len());
    let erased: Vec<Task> = tasks
        .into_iter()
        // SAFETY: `wait_scope` below drains the latch before this frame
        // ends, so the tasks' borrows of the caller's stack stay valid.
        .map(|t| unsafe { erase(&scope, t) })
        .collect();
    pool.shared.push_tasks(pool.worker, erased);
    wait_scope(&pool, &scope);
    scope.propagate_panic();
}

/// Run two closures, potentially in parallel, and return both results.
///
/// `b` is queued on the pool (stealable by any worker) while `a` runs on
/// the calling thread, which then helps execute queued work until `b`
/// settles. With no pool, both run inline — byte-identical results either
/// way. If both sides panic, `a`'s payload (the caller's own frame) wins.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let Some(pool) = current() else {
        return (a(), b());
    };
    let scope = ScopeState::new(1);
    let mut rb: Option<RB> = None;
    {
        let slot = &mut rb;
        let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || *slot = Some(b()));
        // SAFETY: `wait_scope` below runs before this frame ends.
        let task = unsafe { erase(&scope, task) };
        pool.shared.push_tasks(pool.worker, vec![task]);
    }
    let ra = panic::catch_unwind(AssertUnwindSafe(a));
    // `b` borrows this frame: it must settle before any unwind.
    wait_scope(&pool, &scope);
    match ra {
        Ok(ra) => {
            scope.propagate_panic();
            (ra, rb.expect("join: task settled without result or panic"))
        }
        Err(p) => panic::resume_unwind(p),
    }
}
