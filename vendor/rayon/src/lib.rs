//! Offline stand-in for the subset of the `rayon` API this workspace
//! uses — now backed by a **real work-stealing thread pool** with a
//! deterministic, index-ordered reduction.
//!
//! The build container has no crates.io access, so the root manifest
//! patches `rayon` to this crate. Every `par_*` entry point splits its
//! index space into chunk tasks over per-worker deques (idle workers
//! steal; waiters help — see [`mod@pool`]) and merges results back **in
//! index order** (see [`mod@iter`]). Because every parallel map in this
//! workspace is pure and order-preserving, outputs are bit-identical to
//! a sequential run at any thread count — CI diffs `RECFLEX_THREADS=1`
//! against `RECFLEX_THREADS=4` to prove it.
//!
//! ## Thread-count knob
//!
//! * `RECFLEX_THREADS` unset or `0` — one worker per available core.
//! * `RECFLEX_THREADS=1` — the exact sequential path; no pool, no
//!   threads, no synchronization.
//! * `RECFLEX_THREADS=n` — `n` pool workers.
//!
//! In-process overrides (benchmarks, tests) use
//! [`ThreadPool::new`]`(n)`[`.install(..)`](ThreadPool::install).
//!
//! ## Divergence from upstream
//!
//! Only the adapter surface this workspace uses is provided (`map`,
//! `enumerate`, `zip`, `for_each`, `collect`, `sum`), and
//! `IntoParallelIterator` is restricted to indexed sources (ranges,
//! `Vec`, slices, chunks) instead of upstream's blanket `IntoIterator`
//! bridge, so order-unstable sources like `HashMap` are a compile error
//! rather than a latent replay-determinism bug.

pub mod iter;
pub mod pool;

pub use pool::{configured_threads, join, ThreadPool};

/// The number of threads `par_*` calls on this thread will use.
pub fn current_num_threads() -> usize {
    configured_threads()
}

/// The `use rayon::prelude::*` surface.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let ranged: Vec<usize> = (0..4usize).into_par_iter().collect();
        assert_eq!(ranged, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chunks_and_join() {
        let v = [1, 2, 3, 4, 5];
        let sums: Vec<i32> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7, 5]);
        let mut m = [1, 2, 3, 4];
        m.par_chunks_mut(2).for_each(|c| c.reverse());
        assert_eq!(m, [2, 1, 4, 3]);
        assert_eq!(super::join(|| 1, || 2), (1, 2));
    }

    /// The parallel path must agree byte-for-byte with the sequential one,
    /// even on float-heavy maps where reassociation would show instantly.
    #[test]
    fn pool_collect_is_index_ordered() {
        let pool = ThreadPool::new(4);
        let seq: Vec<f64> = (0..10_000u32)
            .into_par_iter()
            .map(|i| (i as f64).sqrt().sin() * 1e-3 + i as f64)
            .collect();
        let par: Vec<f64> = pool.install(|| {
            (0..10_000u32)
                .into_par_iter()
                .map(|i| (i as f64).sqrt().sin() * 1e-3 + i as f64)
                .collect()
        });
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pool_runs_on_many_threads() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.current_num_threads(), 4);
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            (0..1_000usize).into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1_000);
    }

    #[test]
    fn panic_propagates_with_payload() {
        let pool = ThreadPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..100usize).into_par_iter().for_each(|i| {
                    if i == 37 {
                        panic!("boom at {i}");
                    }
                })
            })
        }));
        let payload = caught.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("payload resumes intact");
        assert_eq!(msg, "boom at 37");
        // The pool must survive a panicking scope.
        let v: Vec<usize> = pool.install(|| (0..8usize).into_par_iter().collect());
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn nested_join_runs_deep() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = super::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = ThreadPool::new(4);
        assert_eq!(pool.install(|| fib(16)), 987);
    }

    #[test]
    fn result_collect_reports_lowest_index_error() {
        let pool = ThreadPool::new(8);
        let r: Result<Vec<u32>, String> = pool.install(|| {
            (0..1_000u32)
                .into_par_iter()
                .map(|i| {
                    if i % 251 == 250 {
                        Err(format!("bad {i}"))
                    } else {
                        Ok(i)
                    }
                })
                .collect()
        });
        assert_eq!(r.unwrap_err(), "bad 250");
    }

    #[test]
    fn sequential_pool_is_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.current_num_threads(), 1);
        let v: Vec<u32> = pool.install(|| (0..64u32).into_par_iter().map(|x| x * x).collect());
        assert_eq!(v[63], 63 * 63);
    }
}
