//! Offline stand-in for the subset of the `rayon` API this workspace uses.
//!
//! The build container has no crates.io access, so the root manifest
//! patches `rayon` to this crate. Every `par_*` entry point returns the
//! corresponding **sequential** std iterator, which makes the whole std
//! `Iterator` adapter surface (`map`, `enumerate`, `collect`, `sum`, …)
//! available unchanged. Results are bit-identical to a real rayon run for
//! this codebase because all its parallel maps are pure and
//! order-preserving; only wall-clock parallelism is lost.

/// Run two closures ("in parallel") and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The `use rayon::prelude::*` surface.
pub mod prelude {
    /// `collection.into_par_iter()` — sequential: the std `IntoIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for rayon's `into_par_iter`.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `collection.par_iter()` — sequential: iterate by reference.
    pub trait IntoParallelRefIterator<'a> {
        /// The underlying sequential iterator.
        type Iter: Iterator;
        /// Sequential stand-in for rayon's `par_iter`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `collection.par_iter_mut()` — sequential: iterate by `&mut`.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The underlying sequential iterator.
        type Iter: Iterator;
        /// Sequential stand-in for rayon's `par_iter_mut`.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
    where
        &'a mut C: IntoIterator,
    {
        type Iter = <&'a mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `slice.par_chunks(n)` / `slice.par_chunks_mut(n)` — sequential.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for rayon's `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Mutable sibling of [`ParallelSlice`].
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for rayon's `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let ranged: Vec<usize> = (0..4usize).into_par_iter().collect();
        assert_eq!(ranged, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chunks_and_join() {
        let v = [1, 2, 3, 4, 5];
        let sums: Vec<i32> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7, 5]);
        let mut m = [1, 2, 3, 4];
        m.par_chunks_mut(2).for_each(|c| c.reverse());
        assert_eq!(m, [2, 1, 4, 3]);
        assert_eq!(super::join(|| 1, || 2), (1, 2));
    }
}
