//! Derive macros for the vendored `serde` stand-in.
//!
//! Generates [`serde::Serialize`]/[`serde::Deserialize`] impls against the
//! vendored value-tree model. Implemented directly on `proc_macro` token
//! trees (no `syn`/`quote` — the build container is offline), so it
//! supports exactly the shapes this workspace declares:
//!
//! * structs with named fields,
//! * enums whose variants are unit, one-field newtype, or named-field
//!   structs,
//! * no generics, no `where` clauses, no `#[serde(...)]` attributes.
//!
//! Anything else fails the build with an explicit message rather than
//! silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

enum Variant {
    Unit(String),
    Newtype(String),
    Struct(String, Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut body = String::from("let mut __obj = ::serde::Value::object();\n");
            for f in fields {
                body += &format!(
                    "__obj.insert({f:?}, ::serde::Serialize::serialize_value(&self.{f}));\n"
                );
            }
            body += "__obj";
            impl_block(name, "Serialize", &format!(
                "fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}"
            ))
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms += &format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    ),
                    Variant::Newtype(vn) => arms += &format!(
                        "{name}::{vn}(__x0) => {{\n\
                         let mut __o = ::serde::Value::object();\n\
                         __o.insert({vn:?}, ::serde::Serialize::serialize_value(__x0));\n\
                         __o\n}}\n"
                    ),
                    Variant::Struct(vn, fields) => {
                        let binds = fields.join(", ");
                        let mut inner =
                            String::from("let mut __inner = ::serde::Value::object();\n");
                        for f in fields {
                            inner += &format!(
                                "__inner.insert({f:?}, ::serde::Serialize::serialize_value({f}));\n"
                            );
                        }
                        arms += &format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut __o = ::serde::Value::object();\n\
                             __o.insert({vn:?}, __inner);\n\
                             __o\n}}\n"
                        );
                    }
                }
            }
            impl_block(name, "Serialize", &format!(
                "fn serialize_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}"
            ))
        }
    };
    code.parse().expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits += &format!(
                    "{f}: ::serde::Deserialize::deserialize_value(__v.field({f:?})?)?,\n"
                );
            }
            impl_block(name, "Deserialize", &format!(
                "fn deserialize_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}"
            ))
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => unit_arms += &format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    ),
                    Variant::Newtype(vn) => tagged_arms += &format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_value(__payload)?)),\n"
                    ),
                    Variant::Struct(vn, fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits += &format!(
                                "{f}: ::serde::Deserialize::deserialize_value(\
                                 __payload.field({f:?})?)?,\n"
                            );
                        }
                        tagged_arms += &format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{\n{inits}}}),\n"
                        );
                    }
                }
            }
            impl_block(name, "Deserialize", &format!(
                "fn deserialize_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 _ => {{\n\
                 let (__tag, __payload) = __v.sole_entry()?;\n\
                 match __tag {{\n\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }}\n\
                 }}\n}}"
            ))
        }
    };
    code.parse().expect("serde_derive generated invalid Deserialize impl")
}

fn impl_block(name: &str, trait_name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n#[allow(clippy::all)]\n\
         impl ::serde::{trait_name} for {name} {{\n{body}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct { name, fields: parse_named_fields(g.stream()) }
            }
            other => panic!(
                "vendored serde_derive supports only named-field structs; `{name}` has {other:?}"
            ),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("malformed enum `{name}`: {other:?}"),
        },
        other => panic!("vendored serde_derive cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parse `pub name: Type, ...` field lists, returning field names in
/// declaration order. Types are skipped by scanning to the next comma at
/// angle-bracket depth zero (sufficient for the non-generic types used
/// here, including `Vec<T>` paths).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = 1 + g
                    .stream()
                    .into_iter()
                    .filter(|tt| matches!(tt, TokenTree::Punct(p)
                        if p.as_char() == ',') )
                    .count();
                let has_tokens = g.stream().into_iter().next().is_some();
                if !has_tokens || arity != 1 {
                    panic!(
                        "vendored serde_derive supports only 1-field tuple variants; \
                         `{name}` has {arity}"
                    );
                }
                variants.push(Variant::Newtype(name));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(name, parse_named_fields(g.stream())));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}
