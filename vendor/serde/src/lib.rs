//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build container has no crates.io access, so the root manifest
//! patches `serde` (and `serde_derive`, `serde_json`) to these vendored
//! crates. Unlike real serde's visitor architecture, this stand-in uses a
//! simple JSON-shaped value tree: [`Serialize`] renders a type into a
//! [`Value`], [`Deserialize`] rebuilds the type from one, and the derive
//! macro generates both impls for plain structs and enums (unit, newtype
//! and struct variants — the shapes this workspace declares). The
//! `serde_json` stand-in then prints/parses that tree as real JSON, so
//! files written by this build are ordinary JSON documents.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers (kept exact; `u64::MAX` seeds round-trip).
    UInt(u64),
    /// Negative integers.
    Int(i64),
    /// Everything with a fractional part or exponent.
    Float(f64),
    /// JSON strings.
    Str(String),
    /// JSON arrays.
    Arr(Vec<Value>),
    /// JSON objects, in insertion order.
    Obj(Vec<(String, Value)>),
}

/// (De)serialization failure: a path-less description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Obj(Vec::new())
    }

    /// Append a key to an object (panics on non-objects: derive-internal).
    pub fn insert(&mut self, key: &str, value: Value) {
        match self {
            Value::Obj(entries) => entries.push((key.to_string(), value)),
            _ => panic!("insert on non-object Value"),
        }
    }

    /// Look up a required object field.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{key}`"))),
            _ => Err(Error(format!("expected object with field `{key}`"))),
        }
    }

    /// The sole key/value pair of a one-entry object (enum payloads).
    pub fn sole_entry(&self) -> Result<(&str, &Value), Error> {
        match self {
            Value::Obj(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            _ => Err(Error("expected single-entry object for enum variant".into())),
        }
    }
}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn serialize_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree, reporting shape mismatches as [`Error`]s.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Identity: a [`Value`] serializes to itself. Lets generic JSON tooling
/// (the bench-trajectory checker) round-trip documents it does not model
/// as Rust structs.
impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

/// Identity: any well-formed value tree deserializes as itself.
impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    _ => return Err(Error(format!("expected unsigned integer, got {v:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => {
                        i64::try_from(n).map_err(|_| Error(format!("integer {n} too large")))?
                    }
                    Value::Float(f) if f.fract() == 0.0 => f as i64,
                    _ => return Err(Error(format!("expected integer, got {v:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(n) => Ok(n as $t),
                    Value::Int(n) => Ok(n as $t),
                    _ => Err(Error(format!("expected number, got {v:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(Error(format!("expected array, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

// JSON has no tuple type; serde_json maps tuples to fixed-length arrays.
impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Arr(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 2 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
            )),
            _ => Err(Error(format!("expected 2-element array, got {v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::deserialize_value(&7u32.serialize_value()), Ok(7));
        assert_eq!(i64::deserialize_value(&(-3i64).serialize_value()), Ok(-3));
        assert_eq!(f64::deserialize_value(&1.5f64.serialize_value()), Ok(1.5));
        assert_eq!(u64::deserialize_value(&u64::MAX.serialize_value()), Ok(u64::MAX));
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::deserialize_value(&v.serialize_value()), Ok(v));
        assert_eq!(
            Option::<String>::deserialize_value(&Value::Null),
            Ok(None)
        );
        let pair = ("x".to_string(), 2.5f64);
        assert_eq!(
            <(String, f64)>::deserialize_value(&pair.serialize_value()),
            Ok(pair)
        );
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u32::deserialize_value(&Value::Str("x".into())).is_err());
        assert!(String::deserialize_value(&Value::UInt(3)).is_err());
        assert!(Value::Obj(vec![]).field("missing").is_err());
    }
}
